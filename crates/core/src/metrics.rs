//! Pipeline observability: per-stage wall time and geocode-stage detail.
//!
//! Every [`crate::RefinementPipeline::run`] fills a [`PipelineMetrics`] and
//! returns it on [`crate::AnalysisResult`], so callers can assert on and
//! report the pipeline's hot path — at paper scale the geocode stage
//! dominates, and this is where its throughput, cache behaviour, and
//! scheduler balance become visible. `repro funnel --verbose` prints the
//! same numbers through [`PipelineMetrics::render`].

use std::time::Duration;

/// Wall-clock time of each pipeline stage.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StageTimings {
    /// Stage 1: profile classification (select users).
    pub select_users: Duration,
    /// Stage 2a: tweet intake (GPS filter + cohort membership).
    pub tweet_intake: Duration,
    /// Stage 2b: reverse geocoding of every kept fix.
    pub geocode: Duration,
    /// Stage 3: string building, grouping, and Top-k classification.
    pub grouping: Duration,
    /// End-to-end wall time of `run`.
    pub total: Duration,
}

/// How the geocode stage executed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GeocodeMode {
    /// In-process sharded-cache reverse geocoder (serial fallback for
    /// small inputs or `threads = 1`).
    #[default]
    DirectSerial,
    /// In-process geocoder fanned out over the dynamic block scheduler.
    DirectParallel,
    /// Round trip through the mock Yahoo XML endpoint (parallel-capable
    /// since its accounting moved to atomics).
    YahooXml,
    /// The resilient decorator over the Yahoo endpoint: deadline, bounded
    /// retry, circuit breaker, stale-cache → gazetteer fallback.
    Resilient,
}

impl GeocodeMode {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            GeocodeMode::DirectSerial => "direct/serial",
            GeocodeMode::DirectParallel => "direct/parallel",
            GeocodeMode::YahooXml => "yahoo-xml",
            GeocodeMode::Resilient => "resilient",
        }
    }
}

/// Geocode-stage detail: throughput, cache behaviour, scheduler balance.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GeocodeMetrics {
    /// Execution mode actually taken.
    pub mode: GeocodeMode,
    /// GPS fixes geocoded (cohort members' tagged tweets).
    pub fixes: u64,
    /// Wall time of the geocode stage (same value as
    /// [`StageTimings::geocode`]).
    pub wall: Duration,
    /// Geocoder lookups issued — equals `fixes` on the direct path.
    pub lookups: u64,
    /// Lookups answered from the quantized cache.
    pub cache_hits: u64,
    /// Worker threads used (1 on the serial paths).
    pub threads: usize,
    /// Scheduler blocks completed by each worker thread. Empty on the
    /// serial paths; sums to the total block count on the parallel path.
    /// Imbalance here means the dynamic scheduler was hand-feeding a
    /// straggler, exactly what it exists to absorb.
    pub blocks_per_thread: Vec<u64>,
    /// The backend's full traffic report: outcome partition
    /// (`lookups == resolved + fallbacks + misses`), retry/breaker/fallback
    /// counters, simulated quota days and milliseconds.
    pub traffic: stir_geokr::BackendTraffic,
}

impl GeocodeMetrics {
    /// Fixes geocoded per second of stage wall time; zero on an empty or
    /// instantaneous stage.
    pub fn throughput_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 && self.fixes > 0 {
            self.fixes as f64 / secs
        } else {
            0.0
        }
    }

    /// Cache hit ratio in `[0, 1]`; zero when no lookups happened.
    pub fn cache_hit_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.lookups as f64
        }
    }
}

/// Grouping-stage detail: interned-merge throughput, vocabulary size, and
/// scheduler balance of the per-user grouping fan-out.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GroupingMetrics {
    /// Location strings (packed keys) fed into the merge — one per kept
    /// GPS tweet of a cohort member.
    pub strings: u64,
    /// Users grouped.
    pub users: u64,
    /// Distinct `(user, tweet district)` entries after the merge, summed
    /// over all users — the strings collapse into this many counters.
    pub merged_entries: u64,
    /// Distinct `(state, county)` pairs in the district symbol table.
    pub interner_size: u64,
    /// Worker threads used by the grouping stage (1 = serial path).
    pub threads: usize,
    /// Scheduler blocks completed by each worker thread; `[1]` on the
    /// serial path, sums to the block count on the parallel path.
    pub blocks_per_thread: Vec<u64>,
    /// Wall time of the grouping stage (same value as
    /// [`StageTimings::grouping`]).
    pub wall: Duration,
}

impl GroupingMetrics {
    /// Location strings merged per second of stage wall time; zero on an
    /// empty or instantaneous stage.
    pub fn strings_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 && self.strings > 0 {
            self.strings as f64 / secs
        } else {
            0.0
        }
    }

    /// Merge ratio: input strings per surviving merged entry (≥ 1 when
    /// anything merged; zero on an empty stage). High means heavy
    /// duplication — the shape interning exploits.
    pub fn merge_ratio(&self) -> f64 {
        if self.merged_entries == 0 {
            0.0
        } else {
            self.strings as f64 / self.merged_entries as f64
        }
    }
}

/// Full observability record for one pipeline run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PipelineMetrics {
    /// Per-stage wall time.
    pub stages: StageTimings,
    /// Geocode-stage detail.
    pub geocode: GeocodeMetrics,
    /// Grouping-stage detail.
    pub grouping: GroupingMetrics,
    /// Store-scan detail when the run was fed from a `TweetStore`
    /// (segments pruned, decode volume, throughput); `None` on row-fed
    /// runs.
    pub scan: Option<stir_tweetstore::ScanMetrics>,
}

impl PipelineMetrics {
    /// Multi-line plain-text rendering, matching the repro report style.
    pub fn render(&self) -> String {
        let s = &self.stages;
        let g = &self.geocode;
        let mut out = String::new();
        out.push_str("pipeline stage timings:\n");
        out.push_str(&format!(
            "  select users   {:>12}\n",
            fmt_duration(s.select_users)
        ));
        out.push_str(&format!(
            "  tweet intake   {:>12}\n",
            fmt_duration(s.tweet_intake)
        ));
        out.push_str(&format!(
            "  geocode        {:>12}\n",
            fmt_duration(s.geocode)
        ));
        out.push_str(&format!(
            "  grouping       {:>12}\n",
            fmt_duration(s.grouping)
        ));
        out.push_str(&format!("  total          {:>12}\n", fmt_duration(s.total)));
        out.push_str(&format!(
            "geocode stage ({}): {} fixes, {:.0} fixes/sec, cache hit ratio {:.1}%\n",
            g.mode.label(),
            g.fixes,
            g.throughput_per_sec(),
            100.0 * g.cache_hit_ratio(),
        ));
        if !g.blocks_per_thread.is_empty() {
            let blocks: Vec<String> = g.blocks_per_thread.iter().map(|b| b.to_string()).collect();
            out.push_str(&format!(
                "  scheduler: {} threads, blocks per thread [{}]\n",
                g.threads,
                blocks.join(", ")
            ));
        }
        let t = &g.traffic;
        if t.errors + t.retries + t.fallbacks + t.breaker_opens > 0 {
            out.push_str(&format!(
                "  resilience: {} retries, {} errors, {} breaker opens, \
                 {} fallbacks ({} stale, {} local)\n",
                t.retries,
                t.errors,
                t.breaker_opens,
                t.fallbacks,
                t.stale_fallbacks,
                t.local_fallbacks
            ));
        }
        if t.quota_days > 0 {
            out.push_str(&format!(
                "  simulated API cost: {} quota day(s), {} ms\n",
                t.quota_days, t.simulated_ms
            ));
        }
        let gr = &self.grouping;
        out.push_str(&format!(
            "grouping stage: {} strings over {} users, {:.0} strings/sec, \
             merge ratio {:.2}, {} interned districts\n",
            gr.strings,
            gr.users,
            gr.strings_per_sec(),
            gr.merge_ratio(),
            gr.interner_size,
        ));
        if !gr.blocks_per_thread.is_empty() && gr.threads > 1 {
            let blocks: Vec<String> = gr.blocks_per_thread.iter().map(|b| b.to_string()).collect();
            out.push_str(&format!(
                "  scheduler: {} threads, blocks per thread [{}]\n",
                gr.threads,
                blocks.join(", ")
            ));
        }
        if let Some(scan) = &self.scan {
            out.push_str(&scan.render());
        }
        out
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_handles_zero() {
        let g = GeocodeMetrics::default();
        assert_eq!(g.throughput_per_sec(), 0.0);
        assert_eq!(g.cache_hit_ratio(), 0.0);
    }

    #[test]
    fn throughput_and_hit_ratio() {
        let g = GeocodeMetrics {
            fixes: 1_000,
            wall: Duration::from_millis(500),
            lookups: 1_000,
            cache_hits: 750,
            ..Default::default()
        };
        assert!((g.throughput_per_sec() - 2_000.0).abs() < 1e-9);
        assert!((g.cache_hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn render_mentions_every_section() {
        let m = PipelineMetrics {
            stages: StageTimings {
                select_users: Duration::from_micros(12),
                tweet_intake: Duration::from_millis(3),
                geocode: Duration::from_millis(40),
                grouping: Duration::from_micros(900),
                total: Duration::from_millis(44),
            },
            geocode: GeocodeMetrics {
                mode: GeocodeMode::DirectParallel,
                fixes: 4_096,
                wall: Duration::from_millis(40),
                lookups: 4_096,
                cache_hits: 4_000,
                threads: 4,
                blocks_per_thread: vec![1, 1, 0, 0],
                traffic: stir_geokr::BackendTraffic {
                    lookups: 4_096,
                    resolved: 4_000,
                    fallbacks: 90,
                    misses: 6,
                    cache_hits: 4_000,
                    errors: 12,
                    retries: 9,
                    breaker_opens: 1,
                    stale_fallbacks: 60,
                    local_fallbacks: 30,
                    quota_days: 2,
                    simulated_ms: 1_234,
                },
            },
            grouping: GroupingMetrics {
                strings: 10_000,
                users: 500,
                merged_entries: 2_000,
                interner_size: 229,
                threads: 4,
                blocks_per_thread: vec![2, 1, 1, 0],
                wall: Duration::from_micros(900),
            },
            scan: None,
        };
        assert!(m.geocode.traffic.is_exact());
        let r = m.render();
        for needle in [
            "select users",
            "tweet intake",
            "geocode",
            "grouping",
            "total",
            "fixes/sec",
            "cache hit ratio",
            "blocks per thread",
            "direct/parallel",
            "resilience: 9 retries, 12 errors, 1 breaker opens, 90 fallbacks (60 stale, 30 local)",
            "simulated API cost: 2 quota day(s), 1234 ms",
            "grouping stage: 10000 strings over 500 users",
            "strings/sec",
            "merge ratio 5.00",
            "229 interned districts",
            "4 threads, blocks per thread [2, 1, 1, 0]",
        ] {
            assert!(r.contains(needle), "render missing {needle:?}:\n{r}");
        }
    }

    #[test]
    fn grouping_metrics_ratios() {
        let gr = GroupingMetrics::default();
        assert_eq!(gr.strings_per_sec(), 0.0);
        assert_eq!(gr.merge_ratio(), 0.0);
        let gr = GroupingMetrics {
            strings: 900,
            merged_entries: 300,
            wall: Duration::from_millis(450),
            ..Default::default()
        };
        assert!((gr.strings_per_sec() - 2_000.0).abs() < 1e-9);
        assert!((gr.merge_ratio() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn serial_grouping_renders_no_scheduler_line() {
        let m = PipelineMetrics {
            grouping: GroupingMetrics {
                strings: 10,
                users: 2,
                merged_entries: 4,
                interner_size: 3,
                threads: 1,
                blocks_per_thread: vec![1],
                wall: Duration::from_micros(10),
            },
            ..Default::default()
        };
        let r = m.render();
        assert!(r.contains("grouping stage: 10 strings over 2 users"), "{r}");
        assert_eq!(r.matches("scheduler:").count(), 0, "{r}");
    }

    #[test]
    fn scan_metrics_render_when_present() {
        let m = PipelineMetrics::default();
        assert!(!m.render().contains("store scan:"));
        let m = PipelineMetrics {
            scan: Some(stir_tweetstore::ScanMetrics {
                segments_total: 10,
                segments_pruned: 4,
                records_stored: 1_000,
                records_pruned: 400,
                headers_decoded: 600,
                records_rejected: 100,
                records_yielded: 500,
                bytes_stored: 80_000,
                bytes_decoded: 12_000,
                threads: 1,
                blocks_per_thread: vec![6],
                wall: Duration::from_millis(2),
                ..Default::default()
            }),
            ..Default::default()
        };
        let r = m.render();
        for needle in [
            "store scan: 4/10 segments pruned, 400/1000 records skipped (40.0%)",
            "headers decoded 600  rejected 100  yielded 500",
            "bytes decoded 12000 of 80000 stored (15.0%)",
            "records/sec",
        ] {
            assert!(r.contains(needle), "render missing {needle:?}:\n{r}");
        }
    }

    #[test]
    fn quiet_traffic_renders_no_resilience_lines() {
        let m = PipelineMetrics::default();
        let r = m.render();
        assert!(!r.contains("resilience:"), "{r}");
        assert!(!r.contains("simulated API cost"), "{r}");
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(5)), "5.000 s");
    }
}
