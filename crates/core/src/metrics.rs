//! Pipeline observability: per-stage wall time and geocode-stage detail.
//!
//! Every [`crate::RefinementPipeline::run`] fills a [`PipelineMetrics`] and
//! returns it on [`crate::AnalysisResult`], so callers can assert on and
//! report the pipeline's hot path — at paper scale the geocode stage
//! dominates, and this is where its throughput, cache behaviour, and
//! scheduler balance become visible. `repro funnel --verbose` prints the
//! same numbers through [`PipelineMetrics::render`].

use std::time::Duration;

/// Wall-clock time of each pipeline stage.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StageTimings {
    /// Stage 1: profile classification (select users).
    pub select_users: Duration,
    /// Stage 2a: tweet intake (GPS filter + cohort membership).
    pub tweet_intake: Duration,
    /// Stage 2b: reverse geocoding of every kept fix.
    pub geocode: Duration,
    /// Stage 3: string building, grouping, and Top-k classification.
    pub grouping: Duration,
    /// End-to-end wall time of `run`.
    pub total: Duration,
}

/// How the geocode stage executed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GeocodeMode {
    /// In-process sharded-cache reverse geocoder (serial fallback for
    /// small inputs or `threads = 1`).
    #[default]
    DirectSerial,
    /// In-process geocoder fanned out over the dynamic block scheduler.
    DirectParallel,
    /// Round trip through the mock Yahoo XML endpoint (parallel-capable
    /// since its accounting moved to atomics).
    YahooXml,
    /// The resilient decorator over the Yahoo endpoint: deadline, bounded
    /// retry, circuit breaker, stale-cache → gazetteer fallback.
    Resilient,
}

impl GeocodeMode {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            GeocodeMode::DirectSerial => "direct/serial",
            GeocodeMode::DirectParallel => "direct/parallel",
            GeocodeMode::YahooXml => "yahoo-xml",
            GeocodeMode::Resilient => "resilient",
        }
    }
}

/// Geocode-stage detail: throughput, cache behaviour, scheduler balance.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GeocodeMetrics {
    /// Execution mode actually taken.
    pub mode: GeocodeMode,
    /// GPS fixes geocoded (cohort members' tagged tweets).
    pub fixes: u64,
    /// Wall time of the geocode stage (same value as
    /// [`StageTimings::geocode`]).
    pub wall: Duration,
    /// Geocoder lookups issued — equals `fixes` on the direct path.
    pub lookups: u64,
    /// Lookups answered from the quantized cache.
    pub cache_hits: u64,
    /// Worker threads used (1 on the serial paths).
    pub threads: usize,
    /// Scheduler blocks completed by each worker thread. Empty on the
    /// serial paths; sums to the total block count on the parallel path.
    /// Imbalance here means the dynamic scheduler was hand-feeding a
    /// straggler, exactly what it exists to absorb.
    pub blocks_per_thread: Vec<u64>,
    /// The backend's full traffic report: outcome partition
    /// (`lookups == resolved + fallbacks + misses`), retry/breaker/fallback
    /// counters, simulated quota days and milliseconds.
    pub traffic: stir_geokr::BackendTraffic,
}

impl GeocodeMetrics {
    /// Fixes geocoded per second of stage wall time; zero on an empty or
    /// instantaneous stage.
    pub fn throughput_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 && self.fixes > 0 {
            self.fixes as f64 / secs
        } else {
            0.0
        }
    }

    /// Cache hit ratio in `[0, 1]`; zero when no lookups happened.
    pub fn cache_hit_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.lookups as f64
        }
    }
}

/// Grouping-stage detail: interned-merge throughput, vocabulary size, and
/// scheduler balance of the per-user grouping fan-out.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GroupingMetrics {
    /// Location strings (packed keys) fed into the merge — one per kept
    /// GPS tweet of a cohort member.
    pub strings: u64,
    /// Users grouped.
    pub users: u64,
    /// Distinct `(user, tweet district)` entries after the merge, summed
    /// over all users — the strings collapse into this many counters.
    pub merged_entries: u64,
    /// Distinct `(state, county)` pairs in the district symbol table.
    pub interner_size: u64,
    /// Worker threads used by the grouping stage (1 = serial path).
    pub threads: usize,
    /// Scheduler blocks completed by each worker thread; `[1]` on the
    /// serial path, sums to the block count on the parallel path.
    pub blocks_per_thread: Vec<u64>,
    /// Wall time of the grouping stage (same value as
    /// [`StageTimings::grouping`]).
    pub wall: Duration,
}

impl GroupingMetrics {
    /// Location strings merged per second of stage wall time; zero on an
    /// empty or instantaneous stage.
    pub fn strings_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 && self.strings > 0 {
            self.strings as f64 / secs
        } else {
            0.0
        }
    }

    /// Merge ratio: input strings per surviving merged entry (≥ 1 when
    /// anything merged; zero on an empty stage). High means heavy
    /// duplication — the shape interning exploits.
    pub fn merge_ratio(&self) -> f64 {
        if self.merged_entries == 0 {
            0.0
        } else {
            self.strings as f64 / self.merged_entries as f64
        }
    }
}

/// Select-stage detail: the profile classifier's memoization behaviour.
/// Profile `location_text` values repeat heavily across users, so the
/// classifier runs once per *distinct* string and replays the cached class
/// (with identical funnel accounting) for every repeat.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SelectMetrics {
    /// Profiles classified (equals `funnel.users_collected`).
    pub profiles: u64,
    /// Distinct `location_text` values seen — classifier invocations.
    pub distinct_texts: u64,
    /// Profiles answered from the per-text classification cache
    /// (`profiles - distinct_texts` by construction).
    pub profile_cache_hits: u64,
}

/// How the fused pass actually executed — the adaptive scheduler may take
/// the serial-inline path even when many threads were configured (small
/// input, a 1-core machine, or a warmup sample showing time-slicing).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// The whole pass ran inline on the calling thread.
    #[default]
    SerialInline,
    /// Workers were spawned and the pass ran in parallel.
    Parallel,
}

impl ExecMode {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            ExecMode::SerialInline => "serial-inline",
            ExecMode::Parallel => "parallel",
        }
    }
}

/// Fused-engine detail: per-operator row/wall counters of the one-pass
/// morsel-driven path, partition occupancy, and the intermediate-memory
/// estimate that the counting-allocator test pins in debug builds.
///
/// Operator walls are *summed across workers* (CPU-time-like); the stage
/// walls in [`StageTimings`] remain end-to-end wall clock. `threads` and
/// `partitions` report the **executed** geometry — what actually ran —
/// while `threads_ceiling` and `partitions_configured` carry the
/// configured values, so a serial-inline run can no longer masquerade as
/// an 8-way parallel one in the render.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExecMetrics {
    /// Worker threads that ran the fused pass (1 = inline serial fallback).
    pub threads: usize,
    /// The configured thread ceiling (`--threads`) before the adaptive
    /// scheduler capped it to the machine / the input.
    pub threads_ceiling: usize,
    /// Whether the pass executed serial-inline or parallel.
    pub mode: ExecMode,
    /// Rows per morsel (the work-stealing grain).
    pub morsel_rows: usize,
    /// Hash partitions the emitted keys were actually split into (1 on the
    /// serial-inline path, which needs no hash partitioning).
    pub partitions: usize,
    /// The configured partition count.
    pub partitions_configured: usize,
    /// Morsels drawn from the source, summed over workers.
    pub morsels: u64,
    /// Morsels drawn by each worker (the scheduler-balance signal).
    pub morsels_per_thread: Vec<u64>,
    /// Rows streamed in (equals `funnel.tweets_total`).
    pub rows_in: u64,
    /// Rows that carried a GPS fix.
    pub gps_rows: u64,
    /// Kept-cohort map probes issued — exactly one per GPS row; the
    /// staged path's historical double probe is pinned out by tests.
    pub kept_probes: u64,
    /// GPS fixes of cohort members handed to the geocoder.
    pub fixes: u64,
    /// Fixes rejected by the e6 coverage prescreen without a backend
    /// lookup (provably outside the gazetteer's bbox; counted in
    /// `unresolved` too).
    pub bbox_rejected: u64,
    /// Location keys emitted into partitions (resolvable fixes).
    pub keys_emitted: u64,
    /// Fixes the backend could not resolve (outside coverage / errors).
    pub unresolved: u64,
    /// Filter + GPS check + kept probe, summed across workers.
    pub filter_wall: Duration,
    /// Batched geocoding, summed across workers.
    pub geocode_wall: Duration,
    /// Key build + hash partition + per-morsel flush, summed across workers.
    pub partition_wall: Duration,
    /// Partition sort + per-user grouping, summed across workers.
    pub group_wall: Duration,
    /// Final user-id-order merge of partition outputs (single-threaded).
    pub merge_wall: Duration,
    /// Keys that landed in each partition (skew signal).
    pub partition_keys: Vec<u64>,
    /// Peak intermediate bytes the fused pass holds at once, estimated
    /// from counters: tagged keys + per-worker morsel/scratch buffers.
    pub peak_bytes_estimate: u64,
    /// What the staged reference path would have materialized for the same
    /// input: fix records + resolved vector + per-user key map.
    pub staged_bytes_estimate: u64,
    /// Sealed segments answered from their materialized group sketch
    /// instead of being streamed through the operators (0 when the sketch
    /// path was off or inapplicable).
    pub sketch_segments: u64,
    /// Sketch entries merged across those segments — the work the merge
    /// path did in place of per-row filter → geocode → intern.
    pub sketch_entries_merged: u64,
    /// Records processed row-wise outside the sketch path: the open tail
    /// plus any non-day-aligned window boundaries.
    pub records_scanned_residual: u64,
    /// Encoded bytes of the merged sketches; against the sketched
    /// segments' stored bytes this is the aggregation-pushdown read ratio.
    pub sketch_bytes: u64,
}

impl ExecMetrics {
    /// Peak intermediate bytes per input row; zero on an empty run.
    pub fn bytes_per_tweet(&self) -> f64 {
        if self.rows_in == 0 {
            0.0
        } else {
            self.peak_bytes_estimate as f64 / self.rows_in as f64
        }
    }

    /// Partition skew: max/mean keys over non-empty partitions (1.0 =
    /// perfectly even; zero when no keys were emitted).
    pub fn partition_skew(&self) -> f64 {
        let total: u64 = self.partition_keys.iter().sum();
        if total == 0 || self.partition_keys.is_empty() {
            return 0.0;
        }
        let max = *self.partition_keys.iter().max().expect("non-empty") as f64;
        let mean = total as f64 / self.partition_keys.len() as f64;
        max / mean
    }
}

/// Full observability record for one pipeline run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PipelineMetrics {
    /// Per-stage wall time.
    pub stages: StageTimings,
    /// Select-stage detail (classifier memoization).
    pub select: SelectMetrics,
    /// Geocode-stage detail.
    pub geocode: GeocodeMetrics,
    /// Grouping-stage detail.
    pub grouping: GroupingMetrics,
    /// Fused-engine detail when the morsel-driven path ran; `None` on the
    /// staged reference path.
    pub exec: Option<ExecMetrics>,
    /// Store-scan detail when the run was fed from a `TweetStore`
    /// (segments pruned, decode volume, throughput); `None` on row-fed
    /// runs.
    pub scan: Option<stir_tweetstore::ScanMetrics>,
}

impl PipelineMetrics {
    /// Multi-line plain-text rendering, matching the repro report style.
    pub fn render(&self) -> String {
        let s = &self.stages;
        let g = &self.geocode;
        let mut out = String::new();
        out.push_str("pipeline stage timings:\n");
        out.push_str(&format!(
            "  select users   {:>12}\n",
            fmt_duration(s.select_users)
        ));
        out.push_str(&format!(
            "  tweet intake   {:>12}\n",
            fmt_duration(s.tweet_intake)
        ));
        out.push_str(&format!(
            "  geocode        {:>12}\n",
            fmt_duration(s.geocode)
        ));
        out.push_str(&format!(
            "  grouping       {:>12}\n",
            fmt_duration(s.grouping)
        ));
        out.push_str(&format!("  total          {:>12}\n", fmt_duration(s.total)));
        let sel = &self.select;
        out.push_str(&format!(
            "select stage: {} profiles, {} distinct texts, {} classifier cache hits\n",
            sel.profiles, sel.distinct_texts, sel.profile_cache_hits,
        ));
        out.push_str(&format!(
            "geocode stage ({}): {} fixes, {:.0} fixes/sec, cache hit ratio {:.1}%\n",
            g.mode.label(),
            g.fixes,
            g.throughput_per_sec(),
            100.0 * g.cache_hit_ratio(),
        ));
        if !g.blocks_per_thread.is_empty() {
            let blocks: Vec<String> = g.blocks_per_thread.iter().map(|b| b.to_string()).collect();
            out.push_str(&format!(
                "  scheduler: {} threads, blocks per thread [{}]\n",
                g.threads,
                blocks.join(", ")
            ));
        }
        let t = &g.traffic;
        if t.errors + t.retries + t.fallbacks + t.breaker_opens > 0 {
            out.push_str(&format!(
                "  resilience: {} retries, {} errors, {} breaker opens, \
                 {} fallbacks ({} stale, {} local)\n",
                t.retries,
                t.errors,
                t.breaker_opens,
                t.fallbacks,
                t.stale_fallbacks,
                t.local_fallbacks
            ));
        }
        if t.quota_days > 0 {
            out.push_str(&format!(
                "  simulated API cost: {} quota day(s), {} ms\n",
                t.quota_days, t.simulated_ms
            ));
        }
        let gr = &self.grouping;
        out.push_str(&format!(
            "grouping stage: {} strings over {} users, {:.0} strings/sec, \
             merge ratio {:.2}, {} interned districts\n",
            gr.strings,
            gr.users,
            gr.strings_per_sec(),
            gr.merge_ratio(),
            gr.interner_size,
        ));
        if !gr.blocks_per_thread.is_empty() && gr.threads > 1 {
            let blocks: Vec<String> = gr.blocks_per_thread.iter().map(|b| b.to_string()).collect();
            out.push_str(&format!(
                "  scheduler: {} threads, blocks per thread [{}]\n",
                gr.threads,
                blocks.join(", ")
            ));
        }
        if let Some(e) = &self.exec {
            out.push_str(&format!(
                "fused exec: {} workers ({}, ceiling {}), {} morsels of {} rows, \
                 {} partitions (configured {})\n",
                e.threads,
                e.mode.label(),
                e.threads_ceiling,
                e.morsels,
                e.morsel_rows,
                e.partitions,
                e.partitions_configured,
            ));
            out.push_str(&format!(
                "  operators (cpu): filter {} ({} rows), geocode {} ({} fixes), \
                 partition {} ({} keys), group {}, merge {}\n",
                fmt_duration(e.filter_wall),
                e.rows_in,
                fmt_duration(e.geocode_wall),
                e.fixes,
                fmt_duration(e.partition_wall),
                e.keys_emitted,
                fmt_duration(e.group_wall),
                fmt_duration(e.merge_wall),
            ));
            if e.bbox_rejected > 0 {
                out.push_str(&format!(
                    "  prescreen: {} fixes rejected on the e6 grid without a lookup\n",
                    e.bbox_rejected,
                ));
            }
            if e.threads > 1 {
                let morsels: Vec<String> =
                    e.morsels_per_thread.iter().map(|m| m.to_string()).collect();
                out.push_str(&format!(
                    "  scheduler: {} threads, morsels per thread [{}]\n",
                    e.threads,
                    morsels.join(", ")
                ));
            }
            if e.sketch_segments > 0 {
                out.push_str(&format!(
                    "  sketches: {} segment(s) merged, {} entries ({}), \
                     {} residual records scanned\n",
                    e.sketch_segments,
                    e.sketch_entries_merged,
                    fmt_bytes(e.sketch_bytes),
                    e.records_scanned_residual,
                ));
            }
            out.push_str(&format!(
                "memory: peak intermediate {} ({:.1} B/tweet), staged path would hold {}, \
                 partition skew {:.2}\n",
                fmt_bytes(e.peak_bytes_estimate),
                e.bytes_per_tweet(),
                fmt_bytes(e.staged_bytes_estimate),
                e.partition_skew(),
            ));
        }
        if let Some(scan) = &self.scan {
            out.push_str(&scan.render());
        }
        out
    }
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_handles_zero() {
        let g = GeocodeMetrics::default();
        assert_eq!(g.throughput_per_sec(), 0.0);
        assert_eq!(g.cache_hit_ratio(), 0.0);
    }

    #[test]
    fn throughput_and_hit_ratio() {
        let g = GeocodeMetrics {
            fixes: 1_000,
            wall: Duration::from_millis(500),
            lookups: 1_000,
            cache_hits: 750,
            ..Default::default()
        };
        assert!((g.throughput_per_sec() - 2_000.0).abs() < 1e-9);
        assert!((g.cache_hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn render_mentions_every_section() {
        let m = PipelineMetrics {
            stages: StageTimings {
                select_users: Duration::from_micros(12),
                tweet_intake: Duration::from_millis(3),
                geocode: Duration::from_millis(40),
                grouping: Duration::from_micros(900),
                total: Duration::from_millis(44),
            },
            geocode: GeocodeMetrics {
                mode: GeocodeMode::DirectParallel,
                fixes: 4_096,
                wall: Duration::from_millis(40),
                lookups: 4_096,
                cache_hits: 4_000,
                threads: 4,
                blocks_per_thread: vec![1, 1, 0, 0],
                traffic: stir_geokr::BackendTraffic {
                    lookups: 4_096,
                    resolved: 4_000,
                    fallbacks: 90,
                    misses: 6,
                    cache_hits: 4_000,
                    errors: 12,
                    retries: 9,
                    breaker_opens: 1,
                    stale_fallbacks: 60,
                    local_fallbacks: 30,
                    quota_days: 2,
                    simulated_ms: 1_234,
                },
            },
            select: SelectMetrics {
                profiles: 5_000,
                distinct_texts: 800,
                profile_cache_hits: 4_200,
            },
            grouping: GroupingMetrics {
                strings: 10_000,
                users: 500,
                merged_entries: 2_000,
                interner_size: 229,
                threads: 4,
                blocks_per_thread: vec![2, 1, 1, 0],
                wall: Duration::from_micros(900),
            },
            exec: Some(ExecMetrics {
                threads: 4,
                threads_ceiling: 8,
                mode: ExecMode::Parallel,
                morsel_rows: 2_048,
                partitions: 16,
                partitions_configured: 16,
                morsels: 25,
                morsels_per_thread: vec![7, 6, 6, 6],
                rows_in: 50_000,
                gps_rows: 9_000,
                kept_probes: 9_000,
                fixes: 8_500,
                bbox_rejected: 40,
                keys_emitted: 8_400,
                unresolved: 100,
                filter_wall: Duration::from_millis(2),
                geocode_wall: Duration::from_millis(35),
                partition_wall: Duration::from_millis(1),
                group_wall: Duration::from_millis(1),
                merge_wall: Duration::from_micros(80),
                partition_keys: vec![600; 14],
                peak_bytes_estimate: 220_000,
                staged_bytes_estimate: 540_000,
                ..Default::default()
            }),
            scan: None,
        };
        assert!(m.geocode.traffic.is_exact());
        let r = m.render();
        for needle in [
            "select users",
            "select stage: 5000 profiles, 800 distinct texts, 4200 classifier cache hits",
            "fused exec: 4 workers (parallel, ceiling 8), 25 morsels of 2048 rows, \
             16 partitions (configured 16)",
            "operators (cpu):",
            "prescreen: 40 fixes rejected on the e6 grid without a lookup",
            "morsels per thread [7, 6, 6, 6]",
            "memory: peak intermediate 214.8 KiB (4.4 B/tweet)",
            "partition skew 1.00",
            "tweet intake",
            "geocode",
            "grouping",
            "total",
            "fixes/sec",
            "cache hit ratio",
            "blocks per thread",
            "direct/parallel",
            "resilience: 9 retries, 12 errors, 1 breaker opens, 90 fallbacks (60 stale, 30 local)",
            "simulated API cost: 2 quota day(s), 1234 ms",
            "grouping stage: 10000 strings over 500 users",
            "strings/sec",
            "merge ratio 5.00",
            "229 interned districts",
            "4 threads, blocks per thread [2, 1, 1, 0]",
        ] {
            assert!(r.contains(needle), "render missing {needle:?}:\n{r}");
        }
    }

    #[test]
    fn grouping_metrics_ratios() {
        let gr = GroupingMetrics::default();
        assert_eq!(gr.strings_per_sec(), 0.0);
        assert_eq!(gr.merge_ratio(), 0.0);
        let gr = GroupingMetrics {
            strings: 900,
            merged_entries: 300,
            wall: Duration::from_millis(450),
            ..Default::default()
        };
        assert!((gr.strings_per_sec() - 2_000.0).abs() < 1e-9);
        assert!((gr.merge_ratio() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn serial_inline_render_reports_executed_geometry() {
        // The S2 bug: a serial-inline run used to render the *configured*
        // geometry (8 workers, 16 partitions) as if it had executed. The
        // render must say what ran, with the configuration alongside.
        let m = PipelineMetrics {
            exec: Some(ExecMetrics {
                threads: 1,
                threads_ceiling: 8,
                mode: ExecMode::SerialInline,
                morsel_rows: 2_048,
                partitions: 1,
                partitions_configured: 16,
                morsels: 3,
                morsels_per_thread: vec![3],
                rows_in: 100,
                partition_keys: vec![40],
                ..Default::default()
            }),
            ..Default::default()
        };
        let r = m.render();
        assert!(
            r.contains(
                "fused exec: 1 workers (serial-inline, ceiling 8), 3 morsels of 2048 rows, \
                 1 partitions (configured 16)"
            ),
            "{r}"
        );
        assert!(!r.contains("morsels per thread"), "{r}");
        assert!(!r.contains("prescreen:"), "{r}");
        assert_eq!(ExecMode::SerialInline.label(), "serial-inline");
        assert_eq!(ExecMode::Parallel.label(), "parallel");
    }

    #[test]
    fn serial_grouping_renders_no_scheduler_line() {
        let m = PipelineMetrics {
            grouping: GroupingMetrics {
                strings: 10,
                users: 2,
                merged_entries: 4,
                interner_size: 3,
                threads: 1,
                blocks_per_thread: vec![1],
                wall: Duration::from_micros(10),
            },
            ..Default::default()
        };
        let r = m.render();
        assert!(r.contains("grouping stage: 10 strings over 2 users"), "{r}");
        assert_eq!(r.matches("scheduler:").count(), 0, "{r}");
    }

    #[test]
    fn scan_metrics_render_when_present() {
        let m = PipelineMetrics::default();
        assert!(!m.render().contains("store scan:"));
        let m = PipelineMetrics {
            scan: Some(stir_tweetstore::ScanMetrics {
                segments_total: 10,
                segments_pruned: 4,
                records_stored: 1_000,
                records_pruned: 400,
                headers_decoded: 600,
                records_rejected: 100,
                records_yielded: 500,
                bytes_stored: 80_000,
                bytes_decoded: 12_000,
                threads: 1,
                blocks_per_thread: vec![6],
                wall: Duration::from_millis(2),
                segments_row: 3,
                segments_col: 7,
                col_bytes_read: 9_000,
                row_bytes_equiv: 11_000,
                ..Default::default()
            }),
            ..Default::default()
        };
        let r = m.render();
        for needle in [
            "store scan: 4/10 segments pruned, 400/1000 records skipped (40.0%)",
            "headers decoded 600  rejected 100  yielded 500",
            "bytes decoded 12000 of 80000 stored (15.0%)",
            "formats: 3 row / 7 col segments; column bytes read 9000 vs row-equivalent 11000",
            "records/sec",
        ] {
            assert!(r.contains(needle), "render missing {needle:?}:\n{r}");
        }
    }

    #[test]
    fn quiet_traffic_renders_no_resilience_lines() {
        let m = PipelineMetrics::default();
        let r = m.render();
        assert!(!r.contains("resilience:"), "{r}");
        assert!(!r.contains("simulated API cost"), "{r}");
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(5)), "5.000 s");
    }
}
