//! Plain input rows for the pipeline.
//!
//! These deliberately mirror what a real Twitter export provides: a user's
//! free-text profile location, and tweets with optional GPS coordinates.
//! `stir-twitter-sim` produces them synthetically; nothing in this crate
//! knows the difference.

use stir_geoindex::Point;

/// One user's profile, as collected.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileRow {
    /// User id.
    pub user: u64,
    /// The raw free-text location from the profile.
    pub location_text: String,
}

/// One tweet, as collected.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TweetRow {
    /// Author.
    pub user: u64,
    /// Tweet id.
    pub tweet_id: u64,
    /// GPS coordinates when the client attached them.
    pub gps: Option<Point>,
}

impl TweetRow {
    /// A GPS-tagged tweet row.
    pub fn tagged(user: u64, tweet_id: u64, lat: f64, lon: f64) -> Self {
        TweetRow {
            user,
            tweet_id,
            gps: Some(Point::new(lat, lon)),
        }
    }

    /// An untagged tweet row.
    pub fn plain(user: u64, tweet_id: u64) -> Self {
        TweetRow {
            user,
            tweet_id,
            gps: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let t = TweetRow::tagged(1, 2, 37.5, 127.0);
        assert!(t.gps.is_some());
        assert!(TweetRow::plain(1, 3).gps.is_none());
    }
}
