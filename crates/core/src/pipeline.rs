//! The end-to-end refinement pipeline (§III-B).
//!
//! 1. **Select users**: classify every profile's free-text location; keep
//!    only users resolvable to exactly one district (literal coordinates in
//!    the profile are resolved through the reverse geocoder).
//! 2. **Select tweets**: keep GPS-tagged tweets of kept users; reverse-
//!    geocode each fix to `(state, county)` through a pluggable
//!    [`Geocoder`] backend ([`PipelineConfig::backend`]): the local
//!    gazetteer cache (default), the mock Yahoo XML endpoint (the exact
//!    serialize/parse path the authors used), or the resilient decorator
//!    that rides out injected faults without changing the output.
//! 3. **Build strings** (Table I), **group and order** them (Table II), and
//!    classify each surviving user into a Top-k group.
//!
//! Geocoding parallelizes across `threads` OS threads (`std::thread::scope`)
//! behind a dynamic block scheduler: an atomic cursor hands out fixed-size
//! blocks of fixes, so a thread that drew cheap cache hits steals the next
//! block instead of idling behind a straggler. Output stays deterministic:
//! results land by input index, and per-user string order (which drives
//! tie-breaking) is the tweet input order. Every run also fills a
//! [`PipelineMetrics`] — per-stage wall time, geocode throughput, cache hit
//! ratio, per-thread block counts — returned on [`AnalysisResult`].
//!
//! The hot path is **interned** ([`crate::intern`]): at construction the
//! pipeline interns every gazetteer district's grouping key once (with
//! [`Granularity`] applied), so the per-tweet work is an id-to-id table
//! index — no string is hashed, cloned, or even materialized between the
//! geocoder and the report boundary. The geocode stage asks its backend for
//! the district *id* ([`Geocoder::resolve_id`]), the grouping stage merges
//! 16-byte [`LocationKey`]s, and [`GroupedUser`]'s public `String` fields
//! are resolved from the symbol table once per merged entry at the end.
//! Per-user grouping fans out over the same block scheduler; results are
//! stitched in user-id order, so the output is byte-identical to serial.

pub mod exec;

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use stir_geoindex::Point;
use stir_geokr::service::{BackendChoice, FaultPlan, Geocoder, GeocoderBuilder, ResiliencePolicy};
use stir_geokr::{DistrictId as GazDistrictId, Gazetteer};
use stir_textgeo::{ProfileClass, ProfileClassifier};
use stir_tweetstore::{
    BlockChunk, HeaderBlocks, ScanMetrics, ShardScanMetrics, ShardedHeaderBlocks, ShardedStore,
    TweetStore,
};

use crate::funnel::CollectionFunnel;
use crate::granularity::Granularity;
use crate::grouping::{group_cohort, GroupedUser, TieBreak};
use crate::input::{ProfileRow, TweetRow};
use crate::intern::{DistrictId, DistrictInterner, LocationKey};
use crate::metrics::{
    ExecMetrics, ExecMode, GeocodeMetrics, GeocodeMode, PipelineMetrics, SelectMetrics,
};
use crate::sketch;
use exec::{ColumnBatch, MorselSource, RowSource};

/// Fixes handed to a worker per scheduler draw. Big enough that the atomic
/// cursor is cold (one fetch_add per ~2048 lookups), small enough that a
/// tail block cannot leave a thread idle for long.
const GEOCODE_BLOCK: usize = 2048;

/// Below this many fixes the thread-spawn overhead outweighs the fan-out.
const PARALLEL_THRESHOLD: usize = 1024;

/// Default rows per morsel on the fused path: big enough that per-morsel
/// costs (source cursor, batched geocode dispatch, partition flush) are
/// cold, small enough that workers stay balanced on skewed inputs.
const DEFAULT_MORSEL_ROWS: usize = 2048;

/// One geocoded fix: the gazetteer district id, or `None` outside coverage.
type ResolvedFix = Option<GazDistrictId>;

/// One intake survivor on the staged path: `(user, tweet_id, point,
/// profile district)` — the profile id is captured at the single
/// kept-cohort probe and rides along, so the key build never hashes the
/// user a second time.
type Fix = (u64, u64, Point, DistrictId);

/// The memoized outcome of classifying one distinct profile text: which
/// funnel bucket(s) it increments and, for kept users, the interned
/// district. Replaying one of these is observably identical to
/// re-running the classifier on the same text.
#[derive(Clone, Copy)]
enum CachedClass {
    /// Well-defined text → kept with this interned profile district.
    Kept(DistrictId),
    /// Literal coordinates that resolved in coverage → kept (counted
    /// under both `profile_coordinates` and `well_defined`).
    KeptCoordinates(DistrictId),
    /// Literal coordinates outside coverage → foreign.
    ForeignCoordinates,
    Vague,
    Insufficient,
    Ambiguous,
    Foreign,
    Empty,
}

/// Pipeline options.
///
/// Construct through [`PipelineBuilder`] — the builder validates the
/// geometry once at [`PipelineBuilder::build`] instead of every consumer
/// re-checking field combinations at runtime. Direct field access is
/// deprecated; read through the accessor methods
/// ([`PipelineConfig::threads`], [`PipelineConfig::is_fused`], …).
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Legacy switch for [`BackendChoice::Yahoo`]: round-trip every reverse
    /// geocode through the mock Yahoo XML endpoint (serialize → parse),
    /// exercising the paper's integration path. Ignored when `backend`
    /// already names a non-default choice.
    #[deprecated(note = "construct via PipelineBuilder::via_yahoo_xml")]
    pub via_yahoo_xml: bool,
    /// Which geocoding backend the pipeline plugs in (the pipeline itself
    /// never names a concrete geocoder type).
    #[deprecated(note = "construct via PipelineBuilder::backend")]
    pub backend: BackendChoice,
    /// Fault schedule injected at the Yahoo endpoint (quiet by default;
    /// meaningless for the plain gazetteer backend).
    #[deprecated(note = "construct via PipelineBuilder::faults")]
    pub fault_plan: FaultPlan,
    /// Retry/breaker/budget knobs of the resilient backend.
    #[deprecated(note = "construct via PipelineBuilder::resilience")]
    pub resilience: ResiliencePolicy,
    /// Worker-thread **ceiling** (≥ 1). The scheduler never exceeds it,
    /// but may use fewer: the count is capped at the machine's
    /// `available_parallelism`, and the fused engine additionally
    /// collapses to serial-inline when a warmup sample shows workers
    /// time-slicing one core (see [`exec::warmup_collapse`]).
    #[deprecated(note = "construct via PipelineBuilder::threads")]
    pub threads: usize,
    /// Obey `threads` exactly — no availability cap, no warmup collapse.
    /// The bench escape hatch (`--threads-exact`): oversubscription
    /// experiments need the configured geometry to actually run.
    #[deprecated(note = "construct via PipelineBuilder::threads_exact")]
    pub threads_exact: bool,
    /// Grouping grain (the §III-B metropolitan-split choice).
    #[deprecated(note = "construct via PipelineBuilder::granularity")]
    pub granularity: Granularity,
    /// Run stages 2–3 on the fused morsel-driven engine (default). The
    /// staged path stays available as the reference implementation —
    /// byte-identical output, pinned by tests.
    #[deprecated(note = "construct via PipelineBuilder::staged / fused")]
    pub fused: bool,
    /// Rows per morsel on the fused path; `0` picks the default grain.
    #[deprecated(note = "construct via PipelineBuilder::morsel_rows")]
    pub morsel_rows: usize,
    /// Hash partitions for emitted keys on the fused path; `0` sizes from
    /// the thread count.
    #[deprecated(note = "construct via PipelineBuilder::partitions")]
    pub fused_partitions: usize,
    /// Answer store-backed queries from per-segment group sketches when
    /// every sealed segment has (or can lazily build) one under the
    /// pipeline's gazetteer; falls back to the configured engine
    /// otherwise. Gazetteer backend only.
    #[deprecated(note = "construct via PipelineBuilder::sketches")]
    pub sketches: bool,
}

#[allow(deprecated)] // the one sanctioned construction site besides the builder
impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            via_yahoo_xml: false,
            backend: BackendChoice::default(),
            fault_plan: FaultPlan::default(),
            resilience: ResiliencePolicy::default(),
            threads: 4,
            threads_exact: false,
            granularity: Granularity::District,
            fused: true,
            morsel_rows: 0,
            fused_partitions: 0,
            sketches: false,
        }
    }
}

#[allow(deprecated)] // accessors are the supported read path over the deprecated fields
impl PipelineConfig {
    /// The configured backend choice (before the legacy-flag upgrade —
    /// see [`PipelineConfig::effective_backend`]).
    pub fn backend(&self) -> BackendChoice {
        self.backend
    }

    /// The fault schedule injected at the simulated endpoint.
    pub fn fault_plan(&self) -> FaultPlan {
        self.fault_plan
    }

    /// Retry/breaker/budget knobs of the resilient backend.
    pub fn resilience(&self) -> ResiliencePolicy {
        self.resilience
    }

    /// The configured worker-thread ceiling, as given.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether the thread count is a command rather than a ceiling.
    pub fn threads_exact(&self) -> bool {
        self.threads_exact
    }

    /// The grouping grain.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Whether stages 2–3 run on the fused morsel-driven engine.
    pub fn is_fused(&self) -> bool {
        self.fused
    }

    /// Whether the legacy Yahoo-XML round-trip switch is on.
    pub fn via_yahoo_xml(&self) -> bool {
        self.via_yahoo_xml
    }

    /// Rows per morsel as configured (`0` = auto).
    pub fn morsel_rows(&self) -> usize {
        self.morsel_rows
    }

    /// Fused key partitions as configured (`0` = auto).
    pub fn partitions(&self) -> usize {
        self.fused_partitions
    }

    /// Whether store-backed queries may answer from group sketches.
    pub fn sketches(&self) -> bool {
        self.sketches
    }
    /// The backend actually assembled: an explicit `backend` wins; the
    /// legacy `via_yahoo_xml` flag upgrades the default to the Yahoo path.
    pub fn effective_backend(&self) -> BackendChoice {
        if self.backend == BackendChoice::Gazetteer && self.via_yahoo_xml {
            BackendChoice::Yahoo
        } else {
            self.backend
        }
    }

    /// Worker threads the schedulers actually plan for: the configured
    /// ceiling capped at the machine's available parallelism — an 8-thread
    /// request on a 1-core container plans 1 worker, which is the whole
    /// oversubscription fix. `threads_exact` restores the old behaviour
    /// (the configured count is a command).
    pub fn effective_threads(&self) -> usize {
        let ceiling = self.threads.max(1);
        if self.threads_exact {
            ceiling
        } else {
            ceiling.min(std::thread::available_parallelism().map_or(1, |n| n.get()))
        }
    }

    /// Rows per morsel the fused engine actually uses.
    pub fn effective_morsel_rows(&self) -> usize {
        if self.morsel_rows == 0 {
            DEFAULT_MORSEL_ROWS
        } else {
            self.morsel_rows
        }
    }

    /// Key partitions the fused engine actually uses: explicit value, or
    /// 4× the thread count rounded to a power of two (min 8) — a pure
    /// function of the config, so a given config always partitions the
    /// same way (the output is partition-count-invariant regardless).
    pub fn effective_partitions(&self) -> usize {
        if self.fused_partitions != 0 {
            self.fused_partitions
        } else {
            (self.threads.max(1) * 4).next_power_of_two().clamp(8, 256)
        }
    }
}

/// A configuration rejected by [`PipelineBuilder::build`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PipelineBuildError {
    /// `threads(0)`: the scheduler needs at least one worker.
    ZeroThreads,
    /// `morsel_rows(0)`: a morsel must carry at least one row (leave the
    /// knob unset for the auto grain).
    ZeroMorselRows,
    /// `partitions(0)`: the fused engine needs at least one key partition
    /// (leave the knob unset to size from the thread count).
    ZeroPartitions,
    /// A non-quiet fault plan with the plain gazetteer backend: faults
    /// inject at the simulated endpoint, which the gazetteer never dials.
    FaultsNeedEndpoint,
}

impl std::fmt::Display for PipelineBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineBuildError::ZeroThreads => write!(f, "thread ceiling must be at least 1"),
            PipelineBuildError::ZeroMorselRows => {
                write!(f, "morsel_rows must be at least 1 (unset = auto)")
            }
            PipelineBuildError::ZeroPartitions => {
                write!(f, "partitions must be at least 1 (unset = auto)")
            }
            PipelineBuildError::FaultsNeedEndpoint => write!(
                f,
                "a fault plan needs an endpoint backend (yahoo or resilient); \
                 the gazetteer never dials out"
            ),
        }
    }
}

impl std::error::Error for PipelineBuildError {}

/// Builds a validated [`PipelineConfig`] / [`RefinementPipeline`] — the
/// pipeline twin of [`GeocoderBuilder`]. Every knob is a typed method and
/// the combination is checked once, at [`PipelineBuilder::build`], instead
/// of each consumer re-validating a field-bag at runtime:
///
/// ```
/// use stir_core::PipelineBuilder;
/// use stir_geokr::Gazetteer;
///
/// let gazetteer = Gazetteer::load();
/// let pipeline = PipelineBuilder::new(&gazetteer)
///     .threads(8)
///     .morsel_rows(1024)
///     .build()
///     .unwrap();
/// assert_eq!(pipeline.config().threads(), 8);
/// assert!(PipelineBuilder::new(&gazetteer).threads(0).build().is_err());
/// ```
#[derive(Clone)]
pub struct PipelineBuilder<'g> {
    gazetteer: &'g Gazetteer,
    config: PipelineConfig,
    // 0 doubles as "auto" inside the config, so the builder records
    // explicit calls separately: an explicit 0 is an error, unset is auto.
    morsel_rows: Option<usize>,
    partitions: Option<usize>,
}

#[allow(deprecated)] // the builder is the sanctioned writer of the config fields
impl<'g> PipelineBuilder<'g> {
    /// Starts from the default configuration.
    pub fn new(gazetteer: &'g Gazetteer) -> Self {
        PipelineBuilder {
            gazetteer,
            config: PipelineConfig::default(),
            morsel_rows: None,
            partitions: None,
        }
    }

    /// Worker-thread ceiling (default 4; must be ≥ 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Obey the thread count exactly — no availability cap, no warmup
    /// collapse (the bench escape hatch).
    pub fn threads_exact(mut self, exact: bool) -> Self {
        self.config.threads_exact = exact;
        self
    }

    /// Rows per morsel on the fused path (unset = auto; must be ≥ 1).
    pub fn morsel_rows(mut self, rows: usize) -> Self {
        self.morsel_rows = Some(rows);
        self
    }

    /// Hash partitions for fused key emission (unset = auto; must be ≥ 1).
    pub fn partitions(mut self, partitions: usize) -> Self {
        self.partitions = Some(partitions);
        self
    }

    /// The geocoding backend to plug in.
    pub fn backend(mut self, backend: BackendChoice) -> Self {
        self.config.backend = backend;
        self
    }

    /// Fault schedule injected at the simulated Yahoo endpoint. Requires
    /// an endpoint backend (yahoo or resilient) unless the plan is quiet.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.config.fault_plan = plan;
        self
    }

    /// Retry/breaker/budget knobs of the resilient backend.
    pub fn resilience(mut self, policy: ResiliencePolicy) -> Self {
        self.config.resilience = policy;
        self
    }

    /// Grouping grain (the §III-B metropolitan-split choice).
    pub fn granularity(mut self, granularity: Granularity) -> Self {
        self.config.granularity = granularity;
        self
    }

    /// Routes every reverse geocode through the mock Yahoo XML endpoint
    /// (the legacy switch; prefer [`PipelineBuilder::backend`]).
    pub fn via_yahoo_xml(mut self, on: bool) -> Self {
        self.config.via_yahoo_xml = on;
        self
    }

    /// Runs stages 2–3 on the staged reference path instead of the fused
    /// engine.
    pub fn staged(mut self) -> Self {
        self.config.fused = false;
        self
    }

    /// Explicitly selects the fused (true, default) or staged (false)
    /// engine.
    pub fn fused(mut self, fused: bool) -> Self {
        self.config.fused = fused;
        self
    }

    /// Answers store-backed queries from per-segment group sketches when
    /// the whole store is sketch-covered (gazetteer backend only; output
    /// stays byte-identical to the scan engines, pinned by tests). Default
    /// off.
    pub fn sketches(mut self, on: bool) -> Self {
        self.config.sketches = on;
        self
    }

    /// Validates the combination and returns the config.
    pub fn build_config(mut self) -> Result<PipelineConfig, PipelineBuildError> {
        if self.config.threads == 0 {
            return Err(PipelineBuildError::ZeroThreads);
        }
        // 0 means "auto" inside the config, but through the builder auto
        // is expressed by not calling the knob — an explicit 0 is a mistake.
        match self.morsel_rows {
            Some(0) => return Err(PipelineBuildError::ZeroMorselRows),
            Some(rows) => self.config.morsel_rows = rows,
            None => {}
        }
        match self.partitions {
            Some(0) => return Err(PipelineBuildError::ZeroPartitions),
            Some(parts) => self.config.fused_partitions = parts,
            None => {}
        }
        if !self.config.fault_plan.is_quiet()
            && self.config.effective_backend() == BackendChoice::Gazetteer
        {
            return Err(PipelineBuildError::FaultsNeedEndpoint);
        }
        Ok(self.config)
    }

    /// Validates the combination and builds the pipeline.
    pub fn build(self) -> Result<RefinementPipeline<'g>, PipelineBuildError> {
        let gazetteer = self.gazetteer;
        Ok(RefinementPipeline::new(gazetteer, self.build_config()?))
    }
}

/// A half-open `[start, end)` timestamp window in seconds, for
/// [`RefinementPipeline::execute_windowed`]. Windows aligned to whole UTC
/// days (both bounds multiples of 86 400) are *sketch-complete*: with
/// sketches on they answer from per-segment day buckets without touching
/// a sealed record. Non-aligned windows merge the interior days from
/// sketches and scan only the boundary buckets' records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimeWindow {
    /// Inclusive start timestamp (seconds).
    pub start: u64,
    /// Exclusive end timestamp (seconds).
    pub end: u64,
}

impl TimeWindow {
    /// The day-aligned window covering UTC day ordinals `[lo_day, hi_day)`.
    pub fn days(lo_day: u64, hi_day: u64) -> Self {
        const DAY: u64 = 86_400;
        TimeWindow {
            start: lo_day * DAY,
            end: hi_day * DAY,
        }
    }

    /// Whether `ts` falls inside the window.
    pub fn contains(&self, ts: u64) -> bool {
        ts >= self.start && ts < self.end
    }
}

/// Anything the pipeline can consume, unified behind
/// [`RefinementPipeline::execute`]. The three shapes that used to be three
/// entry points (`run`, `run_from_source`, `run_from_store`) are three
/// variants of one input type; plain `Into` conversions exist for the
/// common concrete shapes so call sites rarely name the enum.
pub enum PipelineInput<'a> {
    /// A stream of tweet rows (the staged engine can run on this shape).
    Rows(Box<dyn Iterator<Item = TweetRow> + Send + 'a>),
    /// A shared morsel source — always runs on the fused engine.
    Source(&'a dyn MorselSource),
    /// A tweet store scanned in place: zero-copy header decode, scan
    /// statistics filled into [`PipelineMetrics::scan`].
    Store(&'a TweetStore),
    /// A user-hash-sharded store: shard blocks feed the fused engine
    /// through a cross-shard morsel source, and [`PipelineMetrics::scan`]
    /// gains per-shard rows (decode volume, WAL recovery outcome).
    Shards(&'a ShardedStore),
}

impl<'a> PipelineInput<'a> {
    /// Wraps any sendable row iterator.
    pub fn rows<I>(rows: I) -> Self
    where
        I: IntoIterator<Item = TweetRow>,
        I::IntoIter: Send + 'a,
    {
        PipelineInput::Rows(Box::new(rows.into_iter()))
    }
}

impl From<Vec<TweetRow>> for PipelineInput<'static> {
    fn from(rows: Vec<TweetRow>) -> Self {
        PipelineInput::rows(rows)
    }
}

impl<'a> From<&'a dyn MorselSource> for PipelineInput<'a> {
    fn from(source: &'a dyn MorselSource) -> Self {
        PipelineInput::Source(source)
    }
}

impl<'a> From<&'a TweetStore> for PipelineInput<'a> {
    fn from(store: &'a TweetStore) -> Self {
        PipelineInput::Store(store)
    }
}

impl<'a> From<&'a ShardedStore> for PipelineInput<'a> {
    fn from(store: &'a ShardedStore) -> Self {
        PipelineInput::Shards(store)
    }
}

/// [`HeaderBlocks`] as a [`MorselSource`]: store blocks feed the fused
/// engine directly — each decoded header's fields go straight into the
/// morsel's columns (no row value of any shape in between), and the
/// block's slot-position ordinals are exactly the input ordinals the
/// engine's determinism argument needs.
struct StoreSource<'s> {
    blocks: HeaderBlocks<'s>,
}

impl MorselSource for StoreSource<'_> {
    fn next_morsel(&self, buf: &mut ColumnBatch) -> Option<u64> {
        buf.clear();
        self.blocks.next_block_mixed(|chunk| match chunk {
            // Columnar (STIRSEG2) block: bulk-copy the primitive slices,
            // no per-record header is ever assembled.
            BlockChunk::Columns(c) => {
                buf.push_store_columns(c.users, c.timestamps, c.lats_e6, c.lons_e6)
            }
            BlockChunk::Header(h) => buf.push(h.user, h.timestamp as i64, h.gps),
        })
    }

    fn morsel_rows(&self) -> usize {
        self.blocks.block_records()
    }
}

/// [`ShardedHeaderBlocks`] as a [`MorselSource`]: the shard-by-shard block
/// layout with cumulative ordinal bases keeps ordinals unique across the
/// whole sharded store, and — because placement confines each user to one
/// shard — every user's ordinals ascend in append order. Grouping state
/// and first-seen tie-breaks are per-user, so the fused engine's output
/// over this source is byte-identical to the single-store run even though
/// the global scan order differs.
struct ShardedSource<'s> {
    blocks: ShardedHeaderBlocks<'s>,
}

impl MorselSource for ShardedSource<'_> {
    fn next_morsel(&self, buf: &mut ColumnBatch) -> Option<u64> {
        buf.clear();
        self.blocks.next_block_mixed(|chunk| match chunk {
            BlockChunk::Columns(c) => {
                buf.push_store_columns(c.users, c.timestamps, c.lats_e6, c.lons_e6)
            }
            BlockChunk::Header(h) => buf.push(h.user, h.timestamp as i64, h.gps),
        })
    }

    fn morsel_rows(&self) -> usize {
        self.blocks.block_records()
    }
}

/// The pipeline's output: the funnel accounting plus every grouped user.
#[derive(Clone, Debug)]
pub struct AnalysisResult {
    /// Stage-by-stage counts.
    pub funnel: CollectionFunnel,
    /// The final cohort, one entry per surviving user, in user-id order.
    pub users: Vec<GroupedUser>,
    /// Every user with a well-defined profile (cohort or not):
    /// user → (state, county). Downstream consumers (event-location
    /// estimation) use profile districts of users who never produced a GPS
    /// tweet — exactly the users whose reliability is unknown.
    pub kept_profiles: HashMap<u64, (String, String)>,
    /// Observability: per-stage wall time and geocode-stage detail.
    pub metrics: PipelineMetrics,
}

/// The refinement pipeline. Construct once per gazetteer; `execute` is
/// `&self`.
///
/// ```
/// use stir_core::{ProfileRow, TweetRow, RefinementPipeline, GroupTable, TopKGroup};
/// use stir_geokr::Gazetteer;
///
/// let gazetteer = Gazetteer::load();
/// let pipeline = RefinementPipeline::with_defaults(&gazetteer);
/// let profiles = vec![ProfileRow { user: 1, location_text: "Seoul Yangcheon-gu".into() }];
/// let tweets = vec![
///     TweetRow::tagged(1, 10, 37.517, 126.866), // in Yangcheon-gu
///     TweetRow::plain(1, 11),                   // no GPS — filtered out
/// ];
/// let result = pipeline.execute(profiles, tweets);
/// assert_eq!(result.funnel.users_final, 1);
/// let table = GroupTable::compute(&result.users);
/// assert_eq!(table.row(TopKGroup::Top1).users, 1);
/// ```
pub struct RefinementPipeline<'g> {
    gazetteer: &'g Gazetteer,
    classifier: ProfileClassifier<'g>,
    config: PipelineConfig,
    /// The district symbol table, filled once at construction: every
    /// gazetteer district's grouping key (granularity applied) is interned
    /// up front, so the per-tweet path never touches a string.
    interner: DistrictInterner,
    /// Gazetteer district id → interned grouping id. Under
    /// [`Granularity::City`] several gazetteer districts map to one
    /// interned id (the metropolitan collapse).
    gaz_to_interned: Vec<DistrictId>,
}

impl<'g> RefinementPipeline<'g> {
    /// Builds a pipeline with the given options.
    pub fn new(gazetteer: &'g Gazetteer, config: PipelineConfig) -> Self {
        let mut interner = DistrictInterner::new();
        let gaz_to_interned = gazetteer
            .districts()
            .iter()
            .map(|d| {
                let (state, county) = config.granularity().key(d.province.name_en(), d.name_en);
                interner.intern(&state, &county)
            })
            .collect();
        RefinementPipeline {
            gazetteer,
            classifier: ProfileClassifier::new(gazetteer),
            config,
            interner,
            gaz_to_interned,
        }
    }

    /// Builds a pipeline with default options.
    pub fn with_defaults(gazetteer: &'g Gazetteer) -> Self {
        Self::new(gazetteer, PipelineConfig::default())
    }

    /// The underlying gazetteer.
    pub fn gazetteer(&self) -> &'g Gazetteer {
        self.gazetteer
    }

    /// The district symbol table. Interned ids returned by
    /// [`RefinementPipeline::select_users`] resolve to their
    /// `(state, county)` strings here.
    pub fn interner(&self) -> &DistrictInterner {
        &self.interner
    }

    /// Stage 1: classify profiles; returns kept users → interned profile
    /// district (resolve through [`RefinementPipeline::interner`]).
    pub fn select_users<I>(
        &self,
        profiles: I,
        funnel: &mut CollectionFunnel,
    ) -> HashMap<u64, DistrictId>
    where
        I: IntoIterator<Item = ProfileRow>,
    {
        let mut select = SelectMetrics::default();
        self.select_users_metered(profiles, funnel, &mut select)
    }

    /// [`RefinementPipeline::select_users`] with the memoization counters
    /// exposed. Profile `location_text` values repeat heavily across
    /// users, so the classifier (and, for literal coordinates, the
    /// reverse geocoder) runs once per *distinct* text; repeats replay the
    /// cached class with identical funnel accounting. The cache key takes
    /// ownership of the row's text — no clone on either path.
    pub fn select_users_metered<I>(
        &self,
        profiles: I,
        funnel: &mut CollectionFunnel,
        select: &mut SelectMetrics,
    ) -> HashMap<u64, DistrictId>
    where
        I: IntoIterator<Item = ProfileRow>,
    {
        let mut kept = HashMap::new();
        // Hot per-query map: one probe per profile row, short string keys
        // — FNV beats SipHash by a wide margin here and the keys are
        // caller-supplied profile texts, not attacker-chosen map fodder.
        let mut cache: HashMap<String, CachedClass, crate::hash::FnvBuildHasher> =
            HashMap::default();
        for ProfileRow {
            user,
            location_text,
        } in profiles
        {
            funnel.users_collected += 1;
            select.profiles += 1;
            let class = match cache.get(location_text.as_str()) {
                Some(&class) => {
                    select.profile_cache_hits += 1;
                    class
                }
                None => {
                    let class = self.classify_cached(&location_text);
                    cache.insert(location_text, class);
                    class
                }
            };
            match class {
                CachedClass::Kept(id) => {
                    funnel.users_well_defined += 1;
                    kept.insert(user, id);
                }
                CachedClass::KeptCoordinates(id) => {
                    funnel.users_profile_coordinates += 1;
                    funnel.users_well_defined += 1;
                    kept.insert(user, id);
                }
                CachedClass::ForeignCoordinates => {
                    funnel.users_profile_coordinates += 1;
                    funnel.users_foreign += 1;
                }
                CachedClass::Vague => funnel.users_vague += 1,
                CachedClass::Insufficient => funnel.users_insufficient += 1,
                CachedClass::Ambiguous => funnel.users_ambiguous += 1,
                CachedClass::Foreign => funnel.users_foreign += 1,
                CachedClass::Empty => funnel.users_empty += 1,
            }
        }
        select.distinct_texts = cache.len() as u64;
        kept
    }

    /// Classifies one distinct profile text down to its funnel bucket —
    /// the per-text work the select stage memoizes.
    fn classify_cached(&self, text: &str) -> CachedClass {
        match self.classifier.classify(text) {
            ProfileClass::WellDefined(id) => CachedClass::Kept(self.gaz_to_interned[id.0 as usize]),
            ProfileClass::Coordinates(point) => match self.gazetteer.resolve_point(point) {
                Some(id) => CachedClass::KeptCoordinates(self.gaz_to_interned[id.0 as usize]),
                None => CachedClass::ForeignCoordinates,
            },
            ProfileClass::Vague => CachedClass::Vague,
            ProfileClass::Insufficient(_) => CachedClass::Insufficient,
            ProfileClass::Ambiguous(_) => CachedClass::Ambiguous,
            ProfileClass::Foreign => CachedClass::Foreign,
            ProfileClass::Empty => CachedClass::Empty,
        }
    }

    /// Stages 2–3: filter and geocode tweets, build packed location keys,
    /// group users. Fills the intake/geocode/grouping slots of `metrics`.
    pub fn process_tweets<I>(
        &self,
        kept: &HashMap<u64, DistrictId>,
        tweets: I,
        funnel: &mut CollectionFunnel,
        metrics: &mut PipelineMetrics,
    ) -> Vec<GroupedUser>
    where
        I: IntoIterator<Item = TweetRow>,
    {
        // Intake: collect GPS fixes of kept users, preserving input order.
        // One cohort probe per GPS tweet: the profile district is captured
        // here and rides in the fix record, so the key build below never
        // hashes the user again (the old shape probed `contains_key` here
        // and indexed `kept[user]` there — twice per kept tweet).
        let intake_start = Instant::now();
        let mut fixes: Vec<Fix> = Vec::new();
        for t in tweets {
            funnel.tweets_total += 1;
            if let Some(p) = t.gps {
                funnel.tweets_with_gps += 1;
                if let Some(&profile) = kept.get(&t.user) {
                    fixes.push((t.user, t.tweet_id, p, profile));
                }
            }
        }
        metrics.stages.tweet_intake = intake_start.elapsed();

        // Geocode every fix (parallel, deterministic by index).
        let geocode_start = Instant::now();
        let resolved = self.geocode_all(&fixes, funnel, &mut metrics.geocode);
        metrics.stages.geocode = geocode_start.elapsed();
        metrics.geocode.wall = metrics.stages.geocode;

        // Build per-user packed keys in input order. Each tweet costs two
        // table indexes and a 16-byte push — no string is hashed or cloned.
        let grouping_start = Instant::now();
        let mut per_user: HashMap<u64, Vec<LocationKey>> = HashMap::new();
        for (&(user, _tweet_id, _p, profile), rec) in fixes.iter().zip(resolved) {
            let Some(gaz_id) = rec else {
                funnel.tweets_gps_unresolvable += 1;
                continue;
            };
            funnel.strings_built += 1;
            per_user.entry(user).or_default().push(LocationKey {
                user,
                profile,
                tweet: self.gaz_to_interned[gaz_id.0 as usize],
            });
        }

        // Group, in user-id order for determinism. Drain the map into a
        // Vec and sort that once — the old shape sorted a key Vec and then
        // re-hashed every user through `per_user[&u]`.
        let mut cohort: Vec<(u64, Vec<LocationKey>)> = per_user.into_iter().collect();
        cohort.sort_unstable_by_key(|&(user, _)| user);
        let threads = self.config.effective_threads();
        let (grouped, blocks_per_thread) =
            group_cohort(&cohort, &self.interner, TieBreak::FirstSeen, threads);
        funnel.users_final = grouped.len() as u64;
        metrics.stages.grouping = grouping_start.elapsed();
        metrics.grouping.strings = funnel.strings_built;
        metrics.grouping.users = cohort.len() as u64;
        metrics.grouping.merged_entries = grouped.iter().map(|u| u.entries.len() as u64).sum();
        metrics.grouping.interner_size = self.interner.len() as u64;
        metrics.grouping.threads = blocks_per_thread.len();
        metrics.grouping.blocks_per_thread = blocks_per_thread;
        metrics.grouping.wall = metrics.stages.grouping;
        grouped
    }

    /// Stages 2–3 on the fused morsel-driven engine
    /// ([`exec`](crate::pipeline::exec)): filter, geocode (batched per
    /// morsel), intern, partition, and group in one parallel pass — no
    /// fix vector, no resolved vector, no per-user key map. Output is
    /// byte-identical to [`RefinementPipeline::process_tweets`]; metrics
    /// additionally fill the [`PipelineMetrics::exec`] slot.
    pub fn process_tweets_fused(
        &self,
        kept: &HashMap<u64, DistrictId>,
        source: &dyn MorselSource,
        funnel: &mut CollectionFunnel,
        metrics: &mut PipelineMetrics,
    ) -> Vec<GroupedUser> {
        let backend = self.build_backend();
        // The e6 coverage prescreen only applies to the in-process
        // gazetteer: remote backends have test-pinned per-lookup traffic
        // (quota days, retry counts) a skipped lookup would change.
        let cover = match self.config.effective_backend() {
            BackendChoice::Gazetteer => Some(exec::CoverE6::korea()),
            _ => None,
        };
        exec::run_fused(
            source,
            &exec::FusedParams {
                backend: backend.as_ref(),
                choice: self.config.effective_backend(),
                kept,
                gaz_to_interned: &self.gaz_to_interned,
                interner: &self.interner,
                tie_break: TieBreak::FirstSeen,
                threads: self.config.effective_threads(),
                threads_ceiling: self.config.threads().max(1),
                threads_exact: self.config.threads_exact(),
                partitions: self.config.effective_partitions(),
                cover,
            },
            funnel,
            metrics,
        )
    }

    /// The pipeline's configuration, as constructed.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The gazetteer-district-id → interned-grouping-id table built at
    /// construction (indexed by [`stir_geokr::DistrictId`] value). The
    /// incremental session shares it so its per-tweet id translation is
    /// the same table lookup the batch engine does.
    pub(crate) fn gaz_to_interned(&self) -> &[DistrictId] {
        &self.gaz_to_interned
    }

    /// Assembles the configured backend. The pipeline only ever sees
    /// `dyn Geocoder` — the concrete type is the builder's business.
    pub(crate) fn build_backend(&self) -> Box<dyn Geocoder + 'g> {
        GeocoderBuilder::new(self.gazetteer)
            .backend(self.config.effective_backend())
            .fault_plan(self.config.fault_plan())
            .resilience(self.config.resilience())
            .build()
    }

    fn geocode_all(
        &self,
        fixes: &[Fix],
        funnel: &mut CollectionFunnel,
        metrics: &mut GeocodeMetrics,
    ) -> Vec<ResolvedFix> {
        metrics.fixes = fixes.len() as u64;
        let choice = self.config.effective_backend();
        let threads = self.config.effective_threads();
        let parallel = threads > 1 && fixes.len() >= PARALLEL_THRESHOLD;
        metrics.mode = match (choice, parallel) {
            (BackendChoice::Gazetteer, false) => GeocodeMode::DirectSerial,
            (BackendChoice::Gazetteer, true) => GeocodeMode::DirectParallel,
            (BackendChoice::Yahoo, _) => GeocodeMode::YahooXml,
            (BackendChoice::Resilient, _) => GeocodeMode::Resilient,
        };
        metrics.threads = if parallel { threads } else { 1 };
        let backend = self.build_backend();
        let mut out: Vec<ResolvedFix> = vec![None; fixes.len()];
        if parallel {
            metrics.blocks_per_thread =
                geocode_parallel(backend.as_ref(), fixes, &mut out, threads);
        } else {
            for (slot, &(_, _, p, _)) in out.iter_mut().zip(fixes) {
                *slot = resolve_one(backend.as_ref(), p);
            }
        }
        // Thread the backend's traffic report into the metrics; an empty
        // cohort never dials out, so its quota-day count is zero by
        // construction (day accounting starts at the first lookup).
        let traffic = backend.traffic();
        metrics.lookups = traffic.lookups;
        metrics.cache_hits = traffic.cache_hits;
        metrics.traffic = traffic;
        funnel.yahoo_quota_days = traffic.quota_days;
        out
    }

    /// Runs the full pipeline on any [`PipelineInput`] — rows, a morsel
    /// source, or a tweet store — selected by plain `Into` conversion:
    ///
    /// ```ignore
    /// pipeline.execute(profiles, rows_vec);        // Vec<TweetRow>
    /// pipeline.execute(profiles, &source);         // &dyn MorselSource
    /// pipeline.execute(profiles, &store);          // &TweetStore
    /// ```
    ///
    /// Rows honor the fused/staged engine choice; a morsel source always
    /// runs fused (it has no staged equivalent); a store streams scan
    /// blocks straight into the fused engine (or decodes rows serially on
    /// the staged path) and fills [`PipelineMetrics::scan`].
    pub fn execute<'a, PI>(
        &self,
        profiles: PI,
        input: impl Into<PipelineInput<'a>>,
    ) -> AnalysisResult
    where
        PI: IntoIterator<Item = ProfileRow>,
    {
        match input.into() {
            PipelineInput::Rows(rows) => self.run_rows(profiles, rows),
            PipelineInput::Source(source) => self.run_source(profiles, source),
            PipelineInput::Store(store) => self.run_store(profiles, store),
            PipelineInput::Shards(store) => self.run_shards(profiles, store),
        }
    }

    /// Runs the full pipeline. Stages 2–3 go through the fused morsel
    /// engine unless the config turned it off (the staged reference path
    /// produces byte-identical output).
    #[deprecated(note = "use `execute(profiles, rows)` — one entry point for every input shape")]
    pub fn run<PI, TI>(&self, profiles: PI, tweets: TI) -> AnalysisResult
    where
        PI: IntoIterator<Item = ProfileRow>,
        TI: IntoIterator<Item = TweetRow>,
        TI::IntoIter: Send,
    {
        self.run_rows(profiles, tweets)
    }

    /// Runs the full pipeline with stages 2–3 fed by an arbitrary
    /// [`MorselSource`].
    #[deprecated(note = "use `execute(profiles, &source)` — one entry point for every input shape")]
    pub fn run_from_source<PI>(&self, profiles: PI, source: &dyn MorselSource) -> AnalysisResult
    where
        PI: IntoIterator<Item = ProfileRow>,
    {
        self.run_source(profiles, source)
    }

    fn run_rows<PI, TI>(&self, profiles: PI, tweets: TI) -> AnalysisResult
    where
        PI: IntoIterator<Item = ProfileRow>,
        TI: IntoIterator<Item = TweetRow>,
        TI::IntoIter: Send,
    {
        let total_start = Instant::now();
        let mut funnel = CollectionFunnel::default();
        let mut metrics = PipelineMetrics::default();
        let select_start = Instant::now();
        let kept = self.select_users_metered(profiles, &mut funnel, &mut metrics.select);
        metrics.stages.select_users = select_start.elapsed();
        let users = if self.config.is_fused() {
            let source = RowSource::new(tweets.into_iter(), self.config.effective_morsel_rows());
            self.process_tweets_fused(&kept, &source, &mut funnel, &mut metrics)
        } else {
            self.process_tweets(&kept, tweets, &mut funnel, &mut metrics)
        };
        metrics.stages.total = total_start.elapsed();
        self.finish(funnel, users, kept, metrics)
    }

    /// The fused engine always runs on this entry (a morsel source has no
    /// staged equivalent). This is how store-backed runs stream scan
    /// blocks straight into the engine without ever collecting a row
    /// vector.
    fn run_source<PI>(&self, profiles: PI, source: &dyn MorselSource) -> AnalysisResult
    where
        PI: IntoIterator<Item = ProfileRow>,
    {
        let total_start = Instant::now();
        let mut funnel = CollectionFunnel::default();
        let mut metrics = PipelineMetrics::default();
        let select_start = Instant::now();
        let kept = self.select_users_metered(profiles, &mut funnel, &mut metrics.select);
        metrics.stages.select_users = select_start.elapsed();
        let users = self.process_tweets_fused(&kept, source, &mut funnel, &mut metrics);
        metrics.stages.total = total_start.elapsed();
        self.finish(funnel, users, kept, metrics)
    }

    /// Runs with tweets streamed out of `store`. The hand-off is zero-copy
    /// per stored record: only the fixed-field header of each record
    /// decodes — the tweet text (which the pipeline never reads) stays
    /// untouched in the segment buffers. On the fused engine (the default)
    /// store blocks *are* the morsels; the staged reference path streams
    /// rows through a serial iterator instead. Scan statistics land in the
    /// result's [`PipelineMetrics::scan`] slot either way.
    fn run_store<PI>(&self, profiles: PI, store: &TweetStore) -> AnalysisResult
    where
        PI: IntoIterator<Item = ProfileRow>,
    {
        let stats = store.stats();
        if let Some(fp) = self.sketch_fingerprint() {
            if let Some(plan) = sketch::plan_store(store, fp) {
                return self.run_sketched(profiles, &plan, &sketch::SketchWindow::All, stats);
            }
        }
        if self.config.is_fused() {
            let source = StoreSource {
                blocks: HeaderBlocks::new(store, self.config.effective_morsel_rows()),
            };
            let mut result = self.run_source(profiles, &source);
            let exec = result.metrics.exec.as_ref();
            result.metrics.scan = Some(ScanMetrics {
                segments_total: stats.segments as u64,
                segments_pruned: 0,
                records_stored: stats.records,
                records_pruned: 0,
                headers_decoded: source.blocks.headers_decoded(),
                records_rejected: 0,
                records_yielded: source.blocks.headers_decoded(),
                records_corrupt: source.blocks.records_corrupt(),
                bytes_stored: stats.payload_bytes,
                bytes_decoded: source.blocks.bytes_decoded(),
                segments_row: source.blocks.segments_row(),
                segments_col: source.blocks.segments_col(),
                col_bytes_read: source.blocks.col_bytes_read(),
                row_bytes_equiv: source.blocks.row_bytes_equiv(),
                threads: exec.map_or(1, |e| e.threads),
                blocks_per_thread: exec.map_or_else(Vec::new, |e| e.morsels_per_thread.clone()),
                // The scan is fused into the pass: the filter operator's
                // time is the closest honest measure of it.
                wall: result.metrics.stages.tweet_intake,
                per_shard: Vec::new(),
                ..Default::default()
            });
            return result;
        }
        let headers = AtomicU64::new(0);
        let header_bytes = AtomicU64::new(0);
        let corrupt = AtomicU64::new(0);
        let tweets = store.scan_views().filter_map(|r| match r {
            Ok(v) => {
                headers.fetch_add(1, Ordering::Relaxed);
                header_bytes.fetch_add(v.header_len() as u64, Ordering::Relaxed);
                Some(TweetRow {
                    user: v.header.user,
                    tweet_id: v.header.id,
                    gps: v.header.gps,
                })
            }
            Err(_) => {
                corrupt.fetch_add(1, Ordering::Relaxed);
                None
            }
        });
        let mut result = self.run_rows(profiles, tweets);
        let seg_col = store.segments().iter().filter(|s| s.is_columnar()).count() as u64;
        result.metrics.scan = Some(ScanMetrics {
            segments_total: stats.segments as u64,
            segments_pruned: 0,
            records_stored: stats.records,
            records_pruned: 0,
            headers_decoded: headers.load(Ordering::Relaxed),
            records_rejected: 0,
            records_yielded: headers.load(Ordering::Relaxed),
            records_corrupt: corrupt.load(Ordering::Relaxed),
            bytes_stored: stats.payload_bytes,
            bytes_decoded: header_bytes.load(Ordering::Relaxed),
            segments_row: stats.segments as u64 - seg_col,
            segments_col: seg_col,
            // The staged path materializes per-record views either way;
            // the column/row byte split is tracked on the fused path only.
            col_bytes_read: 0,
            row_bytes_equiv: 0,
            threads: 1,
            blocks_per_thread: vec![stats.segments as u64],
            // The scan is interleaved with intake: the intake stage's wall
            // time is the closest honest measure of it.
            wall: result.metrics.stages.tweet_intake,
            per_shard: Vec::new(),
            ..Default::default()
        });
        result
    }

    /// Runs with tweets streamed out of a sharded store. The fused engine
    /// consumes the cross-shard morsel source (shard-by-shard blocks with
    /// cumulative ordinal bases); the staged reference path chains the
    /// shards' serial scans in the same order. Either way the output is
    /// byte-identical to the equivalent single-store run — placement is
    /// per-user and so is every ordering the engine depends on — and
    /// [`PipelineMetrics::scan`] gains one row per shard.
    fn run_shards<PI>(&self, profiles: PI, store: &ShardedStore) -> AnalysisResult
    where
        PI: IntoIterator<Item = ProfileRow>,
    {
        let stats = store.stats();
        if let Some(fp) = self.sketch_fingerprint() {
            if let Some(plan) = sketch::plan_shards(store, fp) {
                return self.run_sketched(profiles, &plan, &sketch::SketchWindow::All, stats);
            }
        }
        let per_shard_rows = |bytes: &[u64]| -> Vec<ShardScanMetrics> {
            store
                .shards()
                .iter()
                .enumerate()
                .map(|(i, shard)| {
                    let st = shard.stats();
                    ShardScanMetrics {
                        shard: i as u32,
                        segments_total: st.segments as u64,
                        segments_pruned: 0,
                        records_stored: st.records,
                        records_pruned: 0,
                        bytes_decoded: bytes.get(i).copied().unwrap_or(0),
                        wal: store.recovery()[i],
                    }
                })
                .collect()
        };
        if self.config.is_fused() {
            let source = ShardedSource {
                blocks: ShardedHeaderBlocks::new(store, self.config.effective_morsel_rows()),
            };
            let mut result = self.run_source(profiles, &source);
            let exec = result.metrics.exec.as_ref();
            let shard_bytes: Vec<u64> = source
                .blocks
                .per_shard()
                .iter()
                .map(|p| p.bytes_decoded)
                .collect();
            result.metrics.scan = Some(ScanMetrics {
                segments_total: stats.segments as u64,
                records_stored: stats.records,
                headers_decoded: source.blocks.headers_decoded(),
                records_yielded: source.blocks.headers_decoded(),
                records_corrupt: source.blocks.records_corrupt(),
                bytes_stored: stats.payload_bytes,
                bytes_decoded: source.blocks.bytes_decoded(),
                segments_row: source.blocks.segments_row(),
                segments_col: source.blocks.segments_col(),
                col_bytes_read: source.blocks.col_bytes_read(),
                row_bytes_equiv: source.blocks.row_bytes_equiv(),
                threads: exec.map_or(1, |e| e.threads),
                blocks_per_thread: exec.map_or_else(Vec::new, |e| e.morsels_per_thread.clone()),
                wall: result.metrics.stages.tweet_intake,
                per_shard: per_shard_rows(&shard_bytes),
                ..Default::default()
            });
            return result;
        }
        let headers = AtomicU64::new(0);
        let shard_bytes: Vec<AtomicU64> = (0..store.shard_count())
            .map(|_| AtomicU64::new(0))
            .collect();
        let corrupt = AtomicU64::new(0);
        let tweets = store.shards().iter().enumerate().flat_map(|(i, shard)| {
            let shard_bytes = &shard_bytes;
            let headers = &headers;
            let corrupt = &corrupt;
            shard.scan_views().filter_map(move |r| match r {
                Ok(v) => {
                    headers.fetch_add(1, Ordering::Relaxed);
                    shard_bytes[i].fetch_add(v.header_len() as u64, Ordering::Relaxed);
                    Some(TweetRow {
                        user: v.header.user,
                        tweet_id: v.header.id,
                        gps: v.header.gps,
                    })
                }
                Err(_) => {
                    corrupt.fetch_add(1, Ordering::Relaxed);
                    None
                }
            })
        });
        let mut result = self.run_rows(profiles, tweets);
        let bytes: Vec<u64> = shard_bytes
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let seg_col: u64 = store
            .shards()
            .iter()
            .map(|s| s.segments().iter().filter(|g| g.is_columnar()).count() as u64)
            .sum();
        result.metrics.scan = Some(ScanMetrics {
            segments_total: stats.segments as u64,
            records_stored: stats.records,
            headers_decoded: headers.load(Ordering::Relaxed),
            records_yielded: headers.load(Ordering::Relaxed),
            records_corrupt: corrupt.load(Ordering::Relaxed),
            bytes_stored: stats.payload_bytes,
            bytes_decoded: bytes.iter().sum(),
            segments_row: stats.segments as u64 - seg_col,
            segments_col: seg_col,
            threads: 1,
            blocks_per_thread: vec![stats.segments as u64],
            wall: result.metrics.stages.tweet_intake,
            per_shard: per_shard_rows(&bytes),
            ..Default::default()
        });
        result
    }

    /// The gazetteer vocabulary fingerprint store sketches must match —
    /// `Some` only when the config opts into sketches and the effective
    /// backend is the in-process gazetteer (remote backends have pinned
    /// per-lookup traffic a skipped scan would change).
    pub(crate) fn sketch_fingerprint(&self) -> Option<u64> {
        (self.config.sketches() && self.config.effective_backend() == BackendChoice::Gazetteer)
            .then(|| sketch::gazetteer_fingerprint(self.gazetteer))
    }

    /// Runs a sketch-complete query: stage 1 as usual, then the delta
    /// merge over per-segment sketches plus a record-wise pass over the
    /// residue (open tails; boundary buckets of non-aligned windows).
    /// Output is byte-identical to the scan engines over the same window;
    /// the sketch counters land in both [`PipelineMetrics::exec`] and
    /// [`PipelineMetrics::scan`].
    fn run_sketched<PI>(
        &self,
        profiles: PI,
        plan: &sketch::SketchPlan<'_>,
        window: &sketch::SketchWindow,
        stats: stir_tweetstore::StoreStats,
    ) -> AnalysisResult
    where
        PI: IntoIterator<Item = ProfileRow>,
    {
        let total_start = Instant::now();
        let mut funnel = CollectionFunnel::default();
        let mut metrics = PipelineMetrics::default();
        let select_start = Instant::now();
        let kept = self.select_users_metered(profiles, &mut funnel, &mut metrics.select);
        metrics.stages.select_users = select_start.elapsed();
        let merge_start = Instant::now();
        let resolver = sketch::GazetteerSketcher::for_gazetteer(self.gazetteer);
        let outcome = sketch::execute_plan(
            plan,
            window,
            &sketch::MergeParams {
                kept: &kept,
                gaz_to_interned: &self.gaz_to_interned,
                interner: &self.interner,
                resolver: &resolver,
                tie_break: TieBreak::FirstSeen,
            },
        );
        let merge_wall = merge_start.elapsed();
        funnel.tweets_total += outcome.tweets_total;
        funnel.tweets_with_gps += outcome.tweets_with_gps;
        funnel.tweets_gps_unresolvable += outcome.unresolvable;
        funnel.strings_built += outcome.strings_built;
        funnel.users_final = outcome.users.len() as u64;
        // The merge is intake, geocode, and grouping fused into one pass;
        // its wall lands on the grouping stage (the closest honest slot).
        metrics.stages.grouping = merge_wall;
        metrics.geocode.mode = GeocodeMode::DirectSerial;
        metrics.geocode.fixes = outcome.residual_fixes;
        metrics.geocode.threads = 1;
        metrics.grouping.strings = outcome.strings_built;
        metrics.grouping.users = funnel.users_final;
        metrics.grouping.merged_entries = outcome.merged_entries;
        metrics.grouping.interner_size = self.interner.len() as u64;
        metrics.grouping.threads = 1;
        metrics.grouping.blocks_per_thread = vec![1];
        metrics.grouping.wall = merge_wall;
        metrics.exec = Some(ExecMetrics {
            threads: 1,
            threads_ceiling: self.config.threads().max(1),
            mode: ExecMode::SerialInline,
            morsel_rows: self.config.effective_morsel_rows(),
            partitions: 1,
            partitions_configured: self.config.effective_partitions(),
            rows_in: outcome.tweets_total,
            gps_rows: outcome.tweets_with_gps,
            fixes: outcome.residual_fixes,
            keys_emitted: outcome.strings_built,
            unresolved: outcome.unresolvable,
            merge_wall,
            sketch_segments: outcome.sketch_segments,
            sketch_entries_merged: outcome.entries_merged,
            records_scanned_residual: outcome.residual_scanned,
            sketch_bytes: outcome.sketch_bytes,
            ..Default::default()
        });
        let (mut seg_row, mut seg_col) = (0u64, 0u64);
        for seg in plan
            .sketched
            .iter()
            .map(|(_, _, s)| s)
            .chain(plan.tails.iter().map(|(s, _)| s))
        {
            if seg.is_columnar() {
                seg_col += 1;
            } else {
                seg_row += 1;
            }
        }
        metrics.scan = Some(ScanMetrics {
            segments_total: stats.segments as u64,
            records_stored: stats.records,
            headers_decoded: outcome.residual_scanned,
            records_yielded: outcome.residual_scanned,
            bytes_stored: stats.payload_bytes,
            segments_row: seg_row,
            segments_col: seg_col,
            threads: 1,
            blocks_per_thread: vec![1],
            wall: merge_wall,
            sketch_segments: outcome.sketch_segments,
            sketch_entries_merged: outcome.entries_merged,
            records_scanned_residual: outcome.residual_scanned,
            sketch_bytes: outcome.sketch_bytes,
            ..Default::default()
        });
        metrics.stages.total = total_start.elapsed();
        self.finish(funnel, outcome.users, kept, metrics)
    }

    /// Runs the pipeline over the records of `store` whose timestamp falls
    /// in `window`. With sketches applicable the interior whole days merge
    /// from per-segment day buckets and only the open tail plus any
    /// boundary buckets are scanned — cost scales with touched buckets,
    /// not corpus size. Otherwise the store is scanned with a timestamp
    /// filter and the configured engine runs on the surviving rows, so
    /// both paths return byte-identical results (pinned by proptests).
    pub fn execute_windowed<PI>(
        &self,
        profiles: PI,
        store: &TweetStore,
        window: TimeWindow,
    ) -> AnalysisResult
    where
        PI: IntoIterator<Item = ProfileRow>,
    {
        if let Some(fp) = self.sketch_fingerprint() {
            if let Some(plan) = sketch::plan_store(store, fp) {
                let sw = sketch::SketchWindow::for_window(window);
                return self.run_sketched(profiles, &plan, &sw, store.stats());
            }
        }
        let tweets = store.scan_views().filter_map(move |r| match r {
            Ok(v) if window.contains(v.header.timestamp) => Some(TweetRow {
                user: v.header.user,
                tweet_id: v.header.id,
                gps: v.header.gps,
            }),
            _ => None,
        });
        self.run_rows(profiles, tweets)
    }

    /// [`RefinementPipeline::execute_windowed`] over a sharded store:
    /// per-shard sketch plans merge under cumulative ordinal bases, or the
    /// shards' scans chain in shard order through the timestamp filter.
    pub fn execute_windowed_sharded<PI>(
        &self,
        profiles: PI,
        store: &ShardedStore,
        window: TimeWindow,
    ) -> AnalysisResult
    where
        PI: IntoIterator<Item = ProfileRow>,
    {
        if let Some(fp) = self.sketch_fingerprint() {
            if let Some(plan) = sketch::plan_shards(store, fp) {
                let sw = sketch::SketchWindow::for_window(window);
                return self.run_sketched(profiles, &plan, &sw, store.stats());
            }
        }
        let tweets = store.shards().iter().flat_map(move |shard| {
            shard.scan_views().filter_map(move |r| match r {
                Ok(v) if window.contains(v.header.timestamp) => Some(TweetRow {
                    user: v.header.user,
                    tweet_id: v.header.id,
                    gps: v.header.gps,
                }),
                _ => None,
            })
        });
        self.run_rows(profiles, tweets)
    }

    /// Shared tail of the `run*` entry points: resolve the interned
    /// profile districts to strings once, at the boundary — downstream
    /// consumers keep their published String view.
    fn finish(
        &self,
        funnel: CollectionFunnel,
        users: Vec<GroupedUser>,
        kept: HashMap<u64, DistrictId>,
        metrics: PipelineMetrics,
    ) -> AnalysisResult {
        let kept_profiles = kept
            .into_iter()
            .map(|(user, id)| {
                let (state, county) = self.interner.resolve(id);
                (user, (state.to_string(), county.to_string()))
            })
            .collect();
        AnalysisResult {
            funnel,
            users,
            kept_profiles,
            metrics,
        }
    }
}

/// One fix through any backend, straight to its district id: an error is an
/// unresolvable fix (the resilient backend never errors — its fallback
/// chain absorbs failures; the raw Yahoo backend can, e.g. on an injected
/// rate-limit burst).
pub(crate) fn resolve_one(backend: &dyn Geocoder, p: Point) -> ResolvedFix {
    backend.resolve_id(p).ok().flatten()
}

/// Fans the geocode stage out over `threads` workers with a dynamic block
/// scheduler: an atomic cursor hands out [`GEOCODE_BLOCK`]-sized index
/// ranges, each worker geocodes its range into a thread-local buffer, and
/// the buffers land in `out` by input index — so the output is byte-for-byte
/// the serial result regardless of interleaving. Works for any backend:
/// [`Geocoder`] is `Sync`, so even the XML endpoint (atomics since the
/// `Cell` fix) can be driven from many threads. Returns the number of
/// blocks each worker completed (the scheduler-balance signal surfaced in
/// [`GeocodeMetrics::blocks_per_thread`]).
fn geocode_parallel(
    backend: &dyn Geocoder,
    fixes: &[Fix],
    out: &mut [ResolvedFix],
    threads: usize,
) -> Vec<u64> {
    // Block size shrinks for small inputs so every thread gets work, but
    // never below a granule that keeps cursor traffic negligible.
    let block = (fixes.len().div_ceil(threads * 4)).clamp(64, GEOCODE_BLOCK);
    let cursor = AtomicUsize::new(0);
    let mut per_thread_blocks = vec![0u64; threads];
    std::thread::scope(|s| {
        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let cursor = &cursor;
            workers.push(s.spawn(move || {
                let mut parts: Vec<(usize, Vec<ResolvedFix>)> = Vec::new();
                let mut blocks = 0u64;
                loop {
                    let start = cursor.fetch_add(block, Ordering::Relaxed);
                    if start >= fixes.len() {
                        break;
                    }
                    let end = (start + block).min(fixes.len());
                    let mut resolved = Vec::with_capacity(end - start);
                    for &(_, _, p, _) in &fixes[start..end] {
                        resolved.push(resolve_one(backend, p));
                    }
                    blocks += 1;
                    parts.push((start, resolved));
                }
                (parts, blocks)
            }));
        }
        for (t, worker) in workers.into_iter().enumerate() {
            let (parts, blocks) = worker.join().expect("geocode worker panicked");
            per_thread_blocks[t] = blocks;
            for (start, resolved) in parts {
                for (slot, value) in out[start..start + resolved.len()].iter_mut().zip(resolved) {
                    *slot = value;
                }
            }
        }
    });
    per_thread_blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk::TopKGroup;

    fn gaz() -> &'static Gazetteer {
        Box::leak(Box::new(Gazetteer::load()))
    }

    fn profile(user: u64, text: &str) -> ProfileRow {
        ProfileRow {
            user,
            location_text: text.into(),
        }
    }

    /// Yangcheon-gu centroid (37.517, 126.866); Gangnam (37.517, 127.047).
    const YANGCHEON: (f64, f64) = (37.517, 126.866);
    const GANGNAM: (f64, f64) = (37.517, 127.047);

    #[test]
    fn end_to_end_small_cohort() {
        let g = gaz();
        let pipe = RefinementPipeline::with_defaults(g);
        let profiles = vec![
            profile(1, "Seoul Yangcheon-gu"), // kept, tweets at home → Top-1
            profile(2, "my home"),            // vague → dropped
            profile(3, "Seoul"),              // insufficient → dropped
            profile(4, "Seoul Gangnam-gu"),   // kept but no GPS tweets
        ];
        let tweets = vec![
            TweetRow::tagged(1, 10, YANGCHEON.0, YANGCHEON.1),
            TweetRow::tagged(1, 11, YANGCHEON.0, YANGCHEON.1),
            TweetRow::tagged(1, 12, GANGNAM.0, GANGNAM.1),
            TweetRow::plain(1, 13),
            TweetRow::tagged(2, 20, GANGNAM.0, GANGNAM.1), // dropped user
            TweetRow::plain(4, 40),
        ];
        let result = pipe.execute(profiles, tweets);
        assert_eq!(result.funnel.users_collected, 4);
        assert_eq!(result.funnel.users_well_defined, 2);
        assert_eq!(result.funnel.users_vague, 1);
        assert_eq!(result.funnel.users_insufficient, 1);
        assert_eq!(result.funnel.tweets_total, 6);
        assert_eq!(result.funnel.tweets_with_gps, 4);
        assert_eq!(result.funnel.strings_built, 3);
        assert_eq!(result.funnel.users_final, 1);
        let u = &result.users[0];
        assert_eq!(u.user, 1);
        assert_eq!(u.group(), TopKGroup::Top1);
        assert_eq!(u.distinct_locations(), 2);
        assert_eq!(u.total_tweets(), 3);
    }

    #[test]
    fn xml_roundtrip_path_agrees_with_direct() {
        let g = gaz();
        let profiles = || {
            vec![
                profile(1, "Seoul Yangcheon-gu"),
                profile(2, "Gyeonggi-do Uiwang-si"),
            ]
        };
        let tweets = || {
            vec![
                TweetRow::tagged(1, 1, YANGCHEON.0, YANGCHEON.1),
                TweetRow::tagged(1, 2, GANGNAM.0, GANGNAM.1),
                TweetRow::tagged(2, 3, 37.345, 126.968),
            ]
        };
        let direct = RefinementPipeline::with_defaults(g).execute(profiles(), tweets());
        let via_xml = PipelineBuilder::new(g)
            .via_yahoo_xml(true)
            .threads(1)
            .build()
            .unwrap()
            .execute(profiles(), tweets());
        assert_eq!(direct.users.len(), via_xml.users.len());
        for (a, b) in direct.users.iter().zip(&via_xml.users) {
            assert_eq!(a.user, b.user);
            assert_eq!(a.matched_rank, b.matched_rank);
            assert_eq!(a.entries, b.entries);
        }
    }

    #[test]
    fn unresolvable_gps_is_counted_not_kept() {
        let g = gaz();
        let pipe = RefinementPipeline::with_defaults(g);
        let result = pipe.execute(
            vec![profile(1, "Seoul Yangcheon-gu")],
            vec![
                TweetRow::tagged(1, 1, 35.68, 139.69), // Tokyo
                TweetRow::tagged(1, 2, YANGCHEON.0, YANGCHEON.1),
            ],
        );
        assert_eq!(result.funnel.tweets_gps_unresolvable, 1);
        assert_eq!(result.funnel.strings_built, 1);
        assert_eq!(result.users.len(), 1);
    }

    #[test]
    fn coordinates_profile_is_resolved_and_kept() {
        let g = gaz();
        let pipe = RefinementPipeline::with_defaults(g);
        let result = pipe.execute(
            vec![profile(1, "37.517, 126.866")], // Yangcheon-gu by coordinates
            vec![TweetRow::tagged(1, 1, YANGCHEON.0, YANGCHEON.1)],
        );
        assert_eq!(result.funnel.users_well_defined, 1);
        assert_eq!(result.funnel.users_profile_coordinates, 1);
        assert_eq!(result.users[0].group(), TopKGroup::Top1);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let g = gaz();
        let profiles = || {
            (0..20)
                .map(|u| {
                    profile(
                        u,
                        if u % 2 == 0 {
                            "Seoul Yangcheon-gu"
                        } else {
                            "Busan Jung-gu"
                        },
                    )
                })
                .collect::<Vec<_>>()
        };
        // Enough fixes to trip the parallel path (≥ 1024).
        let tweets = || {
            let mut v = Vec::new();
            let mut id = 0u64;
            for round in 0..60 {
                for u in 0..20u64 {
                    let (lat, lon) = if (u + round) % 3 == 0 {
                        (35.106, 129.032) // Busan Jung-gu
                    } else {
                        YANGCHEON
                    };
                    v.push(TweetRow::tagged(u, id, lat, lon));
                    id += 1;
                }
            }
            v
        };
        let serial = PipelineBuilder::new(g)
            .via_yahoo_xml(false)
            .threads(1)
            .build()
            .unwrap()
            .execute(profiles(), tweets());
        // `threads_exact` pins the configured geometry: this test asserts
        // the 8-way path itself, so the adaptive scheduler must not cap it
        // on a small CI machine. Morsels shrink so 8 workers have ≥ 8
        // morsels of initial work (1200 rows / 128 = 10 morsels).
        let parallel = PipelineBuilder::new(g)
            .via_yahoo_xml(false)
            .threads(8)
            .threads_exact(true)
            .morsel_rows(128)
            .build()
            .unwrap()
            .execute(profiles(), tweets());
        assert_eq!(serial.users.len(), parallel.users.len());
        for (a, b) in serial.users.iter().zip(&parallel.users) {
            assert_eq!(a.user, b.user);
            assert_eq!(a.matched_rank, b.matched_rank);
            assert_eq!(a.entries, b.entries);
        }

        // Metrics record the path taken and the exact traffic.
        use crate::metrics::GeocodeMode;
        assert_eq!(serial.metrics.geocode.mode, GeocodeMode::DirectSerial);
        assert_eq!(parallel.metrics.geocode.mode, GeocodeMode::DirectParallel);
        assert_eq!(parallel.metrics.geocode.threads, 8);
        assert_eq!(parallel.metrics.geocode.fixes, 1200);
        assert_eq!(parallel.metrics.geocode.lookups, 1200);
        let total_blocks: u64 = parallel.metrics.geocode.blocks_per_thread.iter().sum();
        assert!(
            total_blocks >= 1,
            "scheduler handed out no blocks: {:?}",
            parallel.metrics.geocode.blocks_per_thread
        );
        assert_eq!(parallel.metrics.geocode.blocks_per_thread.len(), 8);
    }

    #[test]
    fn empty_cohort_consumes_no_quota_days() {
        let g = gaz();
        let pipe = PipelineBuilder::new(g)
            .via_yahoo_xml(true)
            .threads(1)
            .build()
            .unwrap();
        // No profile survives classification → zero fixes reach the
        // geocoder → the simulated Yahoo endpoint is never dialled.
        let result = pipe.execute(
            vec![profile(1, "my home")],
            vec![TweetRow::tagged(1, 1, GANGNAM.0, GANGNAM.1)],
        );
        assert_eq!(result.funnel.yahoo_quota_days, 0);
        assert_eq!(result.metrics.geocode.fixes, 0);
        assert_eq!(result.metrics.geocode.lookups, 0);

        // And a run that does geocode reports at least one simulated day.
        let busy = PipelineBuilder::new(g)
            .via_yahoo_xml(true)
            .threads(1)
            .build()
            .unwrap()
            .execute(
                vec![profile(1, "Seoul Yangcheon-gu")],
                vec![TweetRow::tagged(1, 1, YANGCHEON.0, YANGCHEON.1)],
            );
        assert_eq!(busy.funnel.yahoo_quota_days, 1);
        assert_eq!(busy.metrics.geocode.fixes, 1);
        assert_eq!(busy.metrics.geocode.lookups, 1);
    }

    #[test]
    fn backend_is_pluggable_and_output_is_backend_invariant() {
        // The same cohort through all three backends — including a noisy
        // resilient one — must group identically: every backend answers
        // from the same gazetteer, and the fallback chain preserves that.
        let g = gaz();
        let profiles = || {
            vec![
                profile(1, "Seoul Yangcheon-gu"),
                profile(2, "Gyeonggi-do Uiwang-si"),
            ]
        };
        let tweets = || {
            vec![
                TweetRow::tagged(1, 1, YANGCHEON.0, YANGCHEON.1),
                TweetRow::tagged(1, 2, GANGNAM.0, GANGNAM.1),
                TweetRow::tagged(2, 3, 37.345, 126.968),
                TweetRow::tagged(2, 4, 35.68, 139.69), // Tokyo, unresolvable
            ]
        };
        let baseline = RefinementPipeline::with_defaults(g).execute(profiles(), tweets());
        // The raw Yahoo backend runs quiet (it has no retry layer above
        // it); the resilient backend is exercised under a noisy schedule —
        // its fallback chain must absorb every fault.
        for (backend, faults) in [
            (BackendChoice::Yahoo, "none"),
            (BackendChoice::Resilient, "drop:0.2,malformed:0.1,seed:7"),
        ] {
            let run = PipelineBuilder::new(g)
                .backend(backend)
                .faults(stir_geokr::FaultPlan::parse(faults).unwrap())
                .threads(1)
                .build()
                .unwrap()
                .execute(profiles(), tweets());
            assert_eq!(baseline.users.len(), run.users.len(), "{backend}");
            for (a, b) in baseline.users.iter().zip(&run.users) {
                assert_eq!(a.user, b.user, "{backend}");
                assert_eq!(a.matched_rank, b.matched_rank, "{backend}");
                assert_eq!(a.entries, b.entries, "{backend}");
            }
            assert_eq!(
                run.funnel.tweets_gps_unresolvable, baseline.funnel.tweets_gps_unresolvable,
                "{backend}"
            );
            // The traffic partition stays exact even under faults.
            let t = &run.metrics.geocode.traffic;
            assert!(t.is_exact(), "{backend}: {t:?}");
            assert_eq!(run.funnel.yahoo_quota_days, 1, "{backend}");
        }
    }

    #[test]
    fn resilient_metrics_count_retries_and_fallbacks_exactly() {
        let g = gaz();
        // A total outage with the breaker disabled: every fix retries the
        // configured budget, then falls back locally. Counts are exact.
        let pipe = PipelineBuilder::new(g)
            .backend(BackendChoice::Resilient)
            .faults(stir_geokr::FaultPlan::parse("drop:1.0").unwrap())
            .resilience(stir_geokr::ResiliencePolicy {
                max_retries: 2,
                breaker_threshold: u32::MAX,
                ..Default::default()
            })
            .threads(1)
            .build()
            .unwrap();
        let result = pipe.execute(
            vec![profile(1, "Seoul Yangcheon-gu")],
            vec![
                TweetRow::tagged(1, 1, YANGCHEON.0, YANGCHEON.1),
                TweetRow::tagged(1, 2, GANGNAM.0, GANGNAM.1),
                TweetRow::tagged(1, 3, 35.68, 139.69), // Tokyo
            ],
        );
        let t = &result.metrics.geocode.traffic;
        assert_eq!(t.lookups, 3);
        assert_eq!(t.resolved, 0, "the primary never answered");
        assert_eq!(t.fallbacks, 2);
        assert_eq!(t.misses, 1);
        assert_eq!(t.retries, 6, "two retries per fix");
        assert_eq!(t.errors, 9, "three attempts per fix all failed");
        assert_eq!(t.local_fallbacks, 3);
        assert!(t.is_exact());
        assert_eq!(result.metrics.geocode.mode, GeocodeMode::Resilient);
        // The degraded run still groups the user correctly.
        assert_eq!(result.funnel.users_final, 1);
        assert_eq!(result.funnel.tweets_gps_unresolvable, 1);
        // The verbose render reports the degradation.
        let rendered = result.metrics.render();
        assert!(rendered.contains("resilience:"), "{rendered}");
    }

    #[test]
    fn metrics_expose_stage_timings_and_throughput() {
        let g = gaz();
        let pipe = RefinementPipeline::with_defaults(g);
        let result = pipe.execute(
            vec![profile(1, "Seoul Yangcheon-gu")],
            vec![
                TweetRow::tagged(1, 1, YANGCHEON.0, YANGCHEON.1),
                TweetRow::tagged(1, 2, YANGCHEON.0, YANGCHEON.1),
            ],
        );
        let m = &result.metrics;
        assert_eq!(m.geocode.fixes, 2);
        assert_eq!(m.geocode.lookups, 2);
        assert_eq!(m.geocode.cache_hits, 1); // second fix hits the cache
        assert!((m.geocode.cache_hit_ratio() - 0.5).abs() < 1e-12);
        assert!(m.stages.total >= m.stages.geocode);
        assert_eq!(m.stages.geocode, m.geocode.wall);
        // The render is non-empty and names the hot stage.
        let rendered = m.render();
        assert!(rendered.contains("geocode"));
        assert!(rendered.contains("cache hit ratio"));
        // Grouping-stage detail: two strings merged into one entry for one
        // user, against the full 229-district symbol table.
        assert_eq!(m.grouping.strings, 2);
        assert_eq!(m.grouping.users, 1);
        assert_eq!(m.grouping.merged_entries, 1);
        assert_eq!(m.grouping.interner_size, 229);
        assert!((m.grouping.merge_ratio() - 2.0).abs() < 1e-12);
        assert_eq!(m.stages.grouping, m.grouping.wall);
        assert!(rendered.contains("grouping stage: 2 strings over 1 users"));
    }

    #[test]
    fn interner_is_prebuilt_and_profiles_resolve_through_it() {
        let g = gaz();
        let pipe = RefinementPipeline::with_defaults(g);
        // Every gazetteer district is interned up front, before any tweet.
        assert_eq!(pipe.interner().len(), 229);
        let mut funnel = CollectionFunnel::default();
        let kept = pipe.select_users(vec![profile(1, "Seoul Yangcheon-gu")], &mut funnel);
        let id = kept[&1];
        assert_eq!(pipe.interner().resolve(id), ("Seoul", "Yangcheon-gu"));
        // The boundary resolution execute() performs matches.
        let result = pipe.execute(
            vec![profile(1, "Seoul Yangcheon-gu")],
            vec![TweetRow::tagged(1, 1, YANGCHEON.0, YANGCHEON.1)],
        );
        assert_eq!(
            result.kept_profiles[&1],
            ("Seoul".to_string(), "Yangcheon-gu".to_string())
        );
    }

    /// A small mixed corpus: kept users, a dropped user, GPS-less rows,
    /// and an out-of-coverage fix — every funnel branch exercised.
    fn mixed_corpus() -> (Vec<ProfileRow>, Vec<TweetRow>) {
        let profiles = vec![
            profile(1, "Seoul Yangcheon-gu"),
            profile(2, "my home"),
            profile(3, "Seoul"),
            profile(4, "Seoul Gangnam-gu"),
            profile(5, "Gyeonggi-do Uiwang-si"),
        ];
        let mut tweets = Vec::new();
        for i in 0..40u64 {
            let user = 1 + i % 5;
            tweets.push(match i % 4 {
                0 => TweetRow::tagged(user, i, YANGCHEON.0, YANGCHEON.1),
                1 => TweetRow::tagged(user, i, GANGNAM.0, GANGNAM.1),
                2 => TweetRow::plain(user, i),
                // Tokyo: GPS present, outside coverage → unresolvable.
                _ => TweetRow::tagged(user, i, 35.68, 139.69),
            });
        }
        (profiles, tweets)
    }

    fn assert_identical(a: &AnalysisResult, b: &AnalysisResult) {
        assert_eq!(a.funnel, b.funnel);
        assert_eq!(a.users.len(), b.users.len());
        for (x, y) in a.users.iter().zip(&b.users) {
            assert_eq!(x.user, y.user);
            assert_eq!(x.state_profile, y.state_profile);
            assert_eq!(x.county_profile, y.county_profile);
            assert_eq!(x.entries, y.entries);
            assert_eq!(x.matched_rank, y.matched_rank);
        }
        assert_eq!(a.kept_profiles, b.kept_profiles);
    }

    #[test]
    fn fused_engine_is_byte_identical_to_staged_reference() {
        let g = gaz();
        let (profiles, tweets) = mixed_corpus();
        let staged = PipelineBuilder::new(g).staged().threads(1).build().unwrap();
        let reference = staged.execute(profiles.clone(), tweets.clone());
        assert!(reference.metrics.exec.is_none());
        for threads in [1, 2, 8] {
            for morsel_rows in [1, 7, 4096] {
                for fused_partitions in [1, 3, 16] {
                    let fused = PipelineBuilder::new(g)
                        .threads(threads)
                        .morsel_rows(morsel_rows)
                        .partitions(fused_partitions)
                        .build()
                        .unwrap();
                    let got = fused.execute(profiles.clone(), tweets.clone());
                    assert_identical(&got, &reference);
                    let exec = got.metrics.exec.as_ref().expect("fused fills exec");
                    assert_eq!(exec.morsel_rows, morsel_rows);
                    assert_eq!(exec.partitions_configured, fused_partitions);
                    assert_eq!(exec.threads_ceiling, threads.max(1));
                    // Executed geometry never exceeds the configured one.
                    assert!(exec.threads <= threads.max(1));
                    assert!(exec.partitions <= fused_partitions.max(1));
                    assert_eq!(exec.rows_in, got.funnel.tweets_total);
                    assert_eq!(
                        exec.partition_keys.iter().sum::<u64>(),
                        got.funnel.strings_built
                    );
                }
            }
        }
    }

    #[test]
    fn fused_probes_the_cohort_exactly_once_per_gps_tweet() {
        let g = gaz();
        let pipe = RefinementPipeline::with_defaults(g);
        let (profiles, tweets) = mixed_corpus();
        let result = pipe.execute(profiles, tweets);
        let exec = result.metrics.exec.as_ref().expect("fused fills exec");
        // One probe per GPS row — the profile district rides in the
        // pending record instead of being re-fetched at key build (the
        // old staged shape would have probed gps + fixes times).
        assert_eq!(exec.kept_probes, result.funnel.tweets_with_gps);
        assert!(exec.kept_probes < result.funnel.tweets_total);
        assert_eq!(exec.fixes, exec.keys_emitted + exec.unresolved);
    }

    #[test]
    fn fused_small_input_falls_back_to_one_inline_worker() {
        let g = gaz();
        let pipe = PipelineBuilder::new(g).threads(8).build().unwrap();
        let result = pipe.execute(
            vec![profile(1, "Seoul Yangcheon-gu")],
            vec![TweetRow::tagged(1, 1, YANGCHEON.0, YANGCHEON.1)],
        );
        let exec = result.metrics.exec.as_ref().expect("fused fills exec");
        assert_eq!(exec.threads, 1, "below threshold stays inline");
        // S2: the metrics say what actually ran — serial-inline, one
        // partition — with the configured geometry reported alongside.
        assert_eq!(exec.mode, crate::metrics::ExecMode::SerialInline);
        assert_eq!(exec.threads_ceiling, 8);
        // Hash partitioning stays on serially (P small sorts beat one big
        // one), so the executed count equals the configured one.
        assert_eq!(exec.partitions, exec.partitions_configured);
        assert_eq!(result.metrics.geocode.mode, GeocodeMode::DirectSerial);
        assert!(result.metrics.geocode.blocks_per_thread.is_empty());
        // Memory estimates are filled and favour the fused shape.
        assert!(exec.peak_bytes_estimate > 0);
        assert!(exec.staged_bytes_estimate > 0);
    }

    #[test]
    fn workers_never_spawn_without_morsels() {
        // S1 regression: the worker count used to come straight from
        // `threads`, so 2000 rows in one 4096-row morsel spawned 8
        // workers, 7 of them with nothing to do. The count must clamp to
        // the prefetched morsel count — every spawned worker processes at
        // least one morsel. `threads_exact` makes the geometry (not the
        // outcome) deterministic on any machine.
        let g = gaz();
        let tweets = |n: u64| -> Vec<TweetRow> {
            (0..n)
                .map(|i| TweetRow::tagged(1, i, YANGCHEON.0, YANGCHEON.1))
                .collect()
        };
        let one_morsel = PipelineBuilder::new(g)
            .threads(8)
            .threads_exact(true)
            .morsel_rows(4096)
            .build()
            .unwrap()
            .execute(vec![profile(1, "Seoul Yangcheon-gu")], tweets(2000));
        let exec = one_morsel.metrics.exec.as_ref().expect("fused fills exec");
        assert_eq!(exec.threads, 1, "one morsel can feed only one worker");
        assert_eq!(exec.morsels_per_thread, vec![1]);

        let three_morsels = PipelineBuilder::new(g)
            .threads(3)
            .threads_exact(true)
            .morsel_rows(1024)
            .build()
            .unwrap()
            .execute(vec![profile(1, "Seoul Yangcheon-gu")], tweets(3072));
        let exec = three_morsels
            .metrics
            .exec
            .as_ref()
            .expect("fused fills exec");
        assert_eq!(exec.threads, 3);
        assert_eq!(
            exec.morsels_per_thread,
            vec![1, 1, 1],
            "round-robin deal guarantees every worker a morsel"
        );
        assert!(
            exec.morsels_per_thread.iter().all(|&m| m > 0),
            "no worker may be spawned with zero morsels: {:?}",
            exec.morsels_per_thread
        );
    }

    #[test]
    fn adaptive_worker_count_respects_the_machine() {
        // Adaptive default: `threads` is a ceiling. The executed count
        // never exceeds min(ceiling, available cores) — on the 1-CPU CI
        // container an 8-thread request runs serial-inline.
        let g = gaz();
        let tweets: Vec<TweetRow> = (0..4096)
            .map(|i| TweetRow::tagged(1, i, YANGCHEON.0, YANGCHEON.1))
            .collect();
        let run = PipelineBuilder::new(g)
            .threads(8)
            .morsel_rows(128)
            .build()
            .unwrap()
            .execute(vec![profile(1, "Seoul Yangcheon-gu")], tweets);
        let exec = run.metrics.exec.as_ref().expect("fused fills exec");
        let machine = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert!(
            exec.threads <= 8.min(machine).max(1),
            "executed {} workers on a {machine}-core machine",
            exec.threads
        );
        assert_eq!(exec.threads_ceiling, 8);
        match exec.mode {
            crate::metrics::ExecMode::SerialInline => assert_eq!(exec.threads, 1),
            crate::metrics::ExecMode::Parallel => assert!(exec.threads > 1),
        }
        assert!(exec.morsels_per_thread.iter().all(|&m| m > 0));
    }

    #[test]
    fn select_users_memoizes_repeated_profile_texts_with_exact_funnel() {
        let g = gaz();
        let pipe = RefinementPipeline::with_defaults(g);
        // 60 profiles over 6 distinct texts, covering kept / vague /
        // insufficient / coordinate / foreign-coordinate / empty branches.
        let texts = [
            "Seoul Yangcheon-gu",
            "my home",
            "Seoul",
            "37.517, 126.866",
            "35.68, 139.69",
            "",
        ];
        let profiles: Vec<ProfileRow> = (0..60)
            .map(|i| profile(i, texts[(i % 6) as usize]))
            .collect();
        let mut funnel = CollectionFunnel::default();
        let mut select = SelectMetrics::default();
        let kept = pipe.select_users_metered(profiles.clone(), &mut funnel, &mut select);
        assert_eq!(select.profiles, 60);
        assert_eq!(select.distinct_texts, 6);
        assert_eq!(select.profile_cache_hits, 54);
        // Funnel counters stay exact: every branch counted per profile,
        // not per distinct text.
        assert_eq!(funnel.users_collected, 60);
        assert_eq!(funnel.users_well_defined, 20, "kept text + resolved coords");
        assert_eq!(funnel.users_vague, 10);
        assert_eq!(funnel.users_insufficient, 10);
        assert_eq!(funnel.users_profile_coordinates, 20);
        assert_eq!(funnel.users_foreign, 10, "foreign coordinates");
        assert_eq!(funnel.users_empty, 10);
        assert_eq!(kept.len(), 20);
        // The metered entry is what run() uses, so results agree with the
        // plain wrapper.
        let mut funnel2 = CollectionFunnel::default();
        let kept2 = pipe.select_users(profiles, &mut funnel2);
        assert_eq!(funnel, funnel2);
        assert_eq!(kept, kept2);
    }

    #[test]
    fn source_input_equals_row_fed_execute() {
        let g = gaz();
        let pipe = RefinementPipeline::with_defaults(g);
        let (profiles, tweets) = mixed_corpus();
        let by_rows = pipe.execute(profiles.clone(), tweets.clone());
        let source = RowSource::new(tweets.into_iter(), 3);
        let by_source = pipe.execute(profiles, PipelineInput::Source(&source));
        assert_identical(&by_rows, &by_source);
    }

    /// The deprecated entry points must keep forwarding to `execute` —
    /// callers on the old API get the new engine, byte for byte.
    #[test]
    #[allow(deprecated)]
    fn deprecated_run_shims_forward_to_execute() {
        let g = gaz();
        let pipe = RefinementPipeline::with_defaults(g);
        let (profiles, tweets) = mixed_corpus();
        let by_execute = pipe.execute(profiles.clone(), tweets.clone());
        let by_run = pipe.run(profiles.clone(), tweets.clone());
        assert_identical(&by_execute, &by_run);
        let source = RowSource::new(tweets.into_iter(), 3);
        let by_source_shim = pipe.run_from_source(profiles, &source);
        assert_identical(&by_execute, &by_source_shim);
    }

    /// Zero-valued knobs are rejected at `build()` instead of surfacing as
    /// a hung or degenerate run later.
    #[test]
    fn builder_rejects_invalid_geometry() {
        let g = gaz();
        assert_eq!(
            PipelineBuilder::new(g)
                .threads(0)
                .build_config()
                .unwrap_err(),
            PipelineBuildError::ZeroThreads
        );
        assert_eq!(
            PipelineBuilder::new(g)
                .morsel_rows(0)
                .build_config()
                .unwrap_err(),
            PipelineBuildError::ZeroMorselRows
        );
        assert_eq!(
            PipelineBuilder::new(g)
                .partitions(0)
                .build_config()
                .unwrap_err(),
            PipelineBuildError::ZeroPartitions
        );
        // Faults against the quiet in-process gazetteer have nothing to
        // perturb — the builder refuses the combination.
        assert_eq!(
            PipelineBuilder::new(g)
                .faults(stir_geokr::FaultPlan::parse("drop:0.5").unwrap())
                .build_config()
                .unwrap_err(),
            PipelineBuildError::FaultsNeedEndpoint
        );
        // The same plan aimed at a real endpoint builds fine.
        let cfg = PipelineBuilder::new(g)
            .backend(BackendChoice::Resilient)
            .faults(stir_geokr::FaultPlan::parse("drop:0.5").unwrap())
            .build_config()
            .unwrap();
        assert_eq!(cfg.backend(), BackendChoice::Resilient);
    }

    #[test]
    fn sketched_store_query_matches_scan() {
        use std::sync::Arc;
        use stir_tweetstore::{StoreFormat, TweetRecord};

        let g = gaz();
        let profiles = vec![
            profile(1, "Seoul Yangcheon-gu"),
            profile(2, "Seoul Gangnam-gu"),
            profile(3, "my home"), // vague — exercises the non-kept probe path
        ];
        // Small segments force several columnar seals; the sketcher is
        // installed before ingest so every seal materializes a sketch.
        let mut store = TweetStore::with_segment_bytes_and_format(1024, StoreFormat::V2);
        store.set_sketcher(Arc::new(crate::sketch::GazetteerSketcher::new()));
        let pts = [YANGCHEON, GANGNAM, (35.68, 139.69)]; // third is unresolvable
        for i in 0..150u64 {
            let (lat, lon) = pts[(i % 3) as usize];
            store.append(&TweetRecord {
                id: i,
                user: 1 + i % 3,
                timestamp: i * 7_200, // 12 rows/day over ~12 days
                gps: (i % 5 != 4).then_some(Point::new(lat, lon)),
                text: format!("t{i}"),
            });
        }
        assert!(store.segments().len() > 2, "want several sealed segments");

        let off = PipelineBuilder::new(g).build().unwrap();
        let on = PipelineBuilder::new(g).sketches(true).build().unwrap();
        let want = off.execute(profiles.clone(), &store);
        let got = on.execute(profiles.clone(), &store);
        assert_eq!(want.funnel, got.funnel);
        assert_eq!(want.users, got.users);
        assert_eq!(want.kept_profiles, got.kept_profiles);
        let scan = got.metrics.scan.as_ref().expect("store runs fill scan");
        assert!(scan.sketch_segments > 0, "sketch path must engage");
        assert!(scan.sketch_entries_merged > 0);
        // Residual work is only the open tail, not the sealed segments.
        assert!(scan.records_scanned_residual < 150);

        // Windowed: a day-aligned window and one straddling partial days
        // must agree with the sketch-off scan fallback.
        for window in [
            TimeWindow::days(2, 7),
            TimeWindow {
                start: 86_400 + 3_600,
                end: 7 * 86_400 + 43_200,
            },
            TimeWindow::days(0, 400), // superset of all data
        ] {
            let want = off.execute_windowed(profiles.clone(), &store, window);
            let got = on.execute_windowed(profiles.clone(), &store, window);
            assert_eq!(want.funnel, got.funnel, "window {window:?}");
            assert_eq!(want.users, got.users, "window {window:?}");
        }
    }

    #[test]
    fn city_granularity_collapses_interned_ids() {
        let g = gaz();
        let pipe = PipelineBuilder::new(g)
            .granularity(Granularity::City)
            .build()
            .unwrap();
        // Metropolitan districts collapse, so the city-grain vocabulary is
        // strictly smaller than the district table.
        assert!(pipe.interner().len() < 229, "{}", pipe.interner().len());
        let mut funnel = CollectionFunnel::default();
        let kept = pipe.select_users(
            vec![
                profile(1, "Seoul Yangcheon-gu"),
                profile(2, "Seoul Jung-gu"),
            ],
            &mut funnel,
        );
        assert_eq!(kept[&1], kept[&2], "city grain merges Seoul gu");
    }
}
