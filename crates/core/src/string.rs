//! The paper's location strings (§III-B, Table I).
//!
//! "We made a text string for each tweet with user id, profile location, and
//! tweet location. … the sharp (#) is a delimiter for each property."
//!
//! The string shape is `user#state_p#county_p#state_t#county_t`. Keeping the
//! literal textual form (rather than jumping straight to ids) preserves the
//! method as published — the grouping step merges *strings*. The pipeline's
//! hot path carries the packed [`LocationKey`] equivalent instead; the two
//! forms convert losslessly through [`LocationString::to_key`] /
//! [`LocationString::from_key`].
//!
//! # The delimiter constraint
//!
//! Because `#` *is* the field delimiter, no field of a well-formed location
//! string may itself contain `#` (or be empty — an empty field is
//! indistinguishable from a doubled delimiter). A district name containing
//! `#` cannot be represented textually: its `Display` output splits into
//! the wrong number of fields, and worse, some corrupt inputs land on
//! exactly five fields and would silently mis-split into shifted district
//! names. [`LocationString::parse`] therefore rejects (returns `None`) any
//! input whose fields are empty, and round-trips are checked canonically:
//! `parse(s)` succeeds only if re-rendering the parsed value reproduces `s`
//! byte for byte, so a mis-split can never pass unnoticed. No real
//! gazetteer name contains `#`; the constraint costs nothing in practice.

use std::fmt;

use crate::intern::{DistrictInterner, LocationKey};

/// One tweet's location string.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct LocationString {
    /// User id.
    pub user: u64,
    /// First-level division from the profile.
    pub state_profile: String,
    /// Second-level division from the profile.
    pub county_profile: String,
    /// First-level division of the tweet's GPS fix.
    pub state_tweet: String,
    /// Second-level division of the tweet's GPS fix.
    pub county_tweet: String,
}

impl LocationString {
    /// True when profile and tweet districts coincide — the paper's
    /// *matched string*.
    pub fn is_matched(&self) -> bool {
        self.state_profile == self.state_tweet && self.county_profile == self.county_tweet
    }

    /// The `(state, county)` pair of the tweet side.
    pub fn tweet_key(&self) -> (&str, &str) {
        (&self.state_tweet, &self.county_tweet)
    }

    /// True when every field respects the delimiter constraint: non-empty
    /// and `#`-free. Only such strings round-trip through
    /// [`fmt::Display`] / [`LocationString::parse`].
    pub fn is_well_formed(&self) -> bool {
        [
            &self.state_profile,
            &self.county_profile,
            &self.state_tweet,
            &self.county_tweet,
        ]
        .iter()
        .all(|f| !f.is_empty() && !f.contains('#'))
    }

    /// Parses the `user#state#county#state#county` form.
    ///
    /// Returns `None` unless exactly five `#`-separated fields are present,
    /// the first parses as a user id, every district field is non-empty,
    /// and the input is canonical (re-rendering the parsed value reproduces
    /// the input exactly). The canonicality check is what rejects inputs
    /// produced by `#`-bearing district names: such text either has the
    /// wrong field count or would silently mis-split into shifted names,
    /// and neither can re-render to the original bytes undetected.
    pub fn parse(s: &str) -> Option<Self> {
        let mut parts = s.split('#');
        let user_text = parts.next()?;
        let user = user_text.trim().parse().ok()?;
        let state_profile = parts.next()?.to_string();
        let county_profile = parts.next()?.to_string();
        let state_tweet = parts.next()?.to_string();
        let county_tweet = parts.next()?.to_string();
        if parts.next().is_some() {
            return None;
        }
        let parsed = LocationString {
            user,
            state_profile,
            county_profile,
            state_tweet,
            county_tweet,
        };
        // Reject empty fields and non-canonical spellings (whitespace
        // around the id, leading zeros, …): anything that does not
        // re-render to the input bytes is a mis-split or a corruption.
        if !parsed.is_well_formed() || user_text != user.to_string() {
            return None;
        }
        Some(parsed)
    }

    /// Interns both district sides, returning the packed hot-path form.
    /// Lossless together with [`LocationString::from_key`]: the exact
    /// strings come back out of the interner.
    pub fn to_key(&self, interner: &mut DistrictInterner) -> LocationKey {
        LocationKey {
            user: self.user,
            profile: interner.intern(&self.state_profile, &self.county_profile),
            tweet: interner.intern(&self.state_tweet, &self.county_tweet),
        }
    }

    /// Reconstructs the published textual form from a packed key.
    ///
    /// # Panics
    /// Panics if either id was not produced by `interner` (use the same
    /// interner that built the key).
    pub fn from_key(key: LocationKey, interner: &DistrictInterner) -> Self {
        let (state_profile, county_profile) = interner.resolve(key.profile);
        let (state_tweet, county_tweet) = interner.resolve(key.tweet);
        LocationString {
            user: key.user,
            state_profile: state_profile.to_string(),
            county_profile: county_profile.to_string(),
            state_tweet: state_tweet.to_string(),
            county_tweet: county_tweet.to_string(),
        }
    }
}

impl fmt::Display for LocationString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}#{}#{}#{}#{}",
            self.user, self.state_profile, self.county_profile, self.state_tweet, self.county_tweet
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_example() -> LocationString {
        // Table I, first row (user id redacted in the OCR; any id works).
        LocationString {
            user: 100,
            state_profile: "Seoul".into(),
            county_profile: "Yangchun-gu".into(),
            state_tweet: "Seoul".into(),
            county_tweet: "Seodaemun-gu".into(),
        }
    }

    #[test]
    fn display_matches_paper_format() {
        assert_eq!(
            paper_example().to_string(),
            "100#Seoul#Yangchun-gu#Seoul#Seodaemun-gu"
        );
    }

    #[test]
    fn parse_roundtrip() {
        let s = paper_example();
        let parsed = LocationString::parse(&s.to_string()).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(LocationString::parse("1#a#b#c").is_none()); // 4 fields
        assert!(LocationString::parse("1#a#b#c#d#e").is_none()); // 6 fields
        assert!(LocationString::parse("x#a#b#c#d").is_none()); // bad id
        assert!(LocationString::parse("").is_none());
    }

    #[test]
    fn parse_rejects_empty_fields() {
        // A doubled delimiter reads as an empty district name — a symptom
        // of a `#`-bearing name having been split; reject, don't guess.
        assert!(LocationString::parse("1##b#c#d").is_none());
        assert!(LocationString::parse("1#a#b#c#").is_none());
        assert!(LocationString::parse("1#a##c#d").is_none());
    }

    #[test]
    fn parse_rejects_noncanonical_user_field() {
        // " 1" used to parse silently; now only the canonical rendering of
        // the id is accepted, so parse∘display is the identity.
        assert!(LocationString::parse(" 1#a#b#c#d").is_none());
        assert!(LocationString::parse("01#a#b#c#d").is_none());
        assert!(LocationString::parse("1#a#b#c#d").is_some());
    }

    #[test]
    fn hash_bearing_names_cannot_slip_through_the_roundtrip() {
        // Regression for the delimiter constraint: a district name that
        // contains '#' renders into extra fields. The round trip must fail
        // loudly (None), never silently mis-split into shifted names.
        let mut s = paper_example();
        s.county_profile = "Yangchun#gu".into();
        assert!(!s.is_well_formed());
        assert_eq!(s.to_string(), "100#Seoul#Yangchun#gu#Seoul#Seodaemun-gu");
        assert!(LocationString::parse(&s.to_string()).is_none());
        // Even a corrupt input that lands on exactly five fields parses
        // only if it is self-consistent — the shifted split re-renders to
        // the same bytes here, so it is *accepted*, but as the five fields
        // it literally spells, never as a guess at the intended four.
        let five_fields = "100#Seoul#Yangchun#gu#Seoul";
        let parsed = LocationString::parse(five_fields).unwrap();
        assert_eq!(parsed.county_profile, "Yangchun");
        assert_eq!(parsed.to_string(), five_fields);
    }

    #[test]
    fn matched_detection() {
        let mut s = paper_example();
        assert!(!s.is_matched());
        s.county_tweet = "Yangchun-gu".into();
        assert!(s.is_matched());
        // Same county name in a different state does NOT match.
        s.state_tweet = "Busan".into();
        assert!(!s.is_matched());
    }

    #[test]
    fn key_roundtrip_is_lossless() {
        let mut interner = DistrictInterner::new();
        let s = paper_example();
        let key = s.to_key(&mut interner);
        assert_eq!(LocationString::from_key(key, &interner), s);
        // Matched-ness carries over to the packed form.
        let mut home = paper_example();
        home.county_tweet = "Yangchun-gu".into();
        let home_key = home.to_key(&mut interner);
        assert_eq!(home.is_matched(), home_key.is_matched());
        assert!(home_key.is_matched());
        // Repeat conversions reuse ids; the vocabulary stays tiny.
        let again = s.to_key(&mut interner);
        assert_eq!(again, key);
        // Only two distinct pairs ever appeared: the shared profile/matched
        // district and the away tweet district.
        assert_eq!(interner.len(), 2);
    }
}
