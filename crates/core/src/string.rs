//! The paper's location strings (§III-B, Table I).
//!
//! "We made a text string for each tweet with user id, profile location, and
//! tweet location. … the sharp (#) is a delimiter for each property."
//!
//! The string shape is `user#state_p#county_p#state_t#county_t`. Keeping the
//! literal textual form (rather than jumping straight to ids) preserves the
//! method as published — the grouping step merges *strings*.

use std::fmt;

/// One tweet's location string.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct LocationString {
    /// User id.
    pub user: u64,
    /// First-level division from the profile.
    pub state_profile: String,
    /// Second-level division from the profile.
    pub county_profile: String,
    /// First-level division of the tweet's GPS fix.
    pub state_tweet: String,
    /// Second-level division of the tweet's GPS fix.
    pub county_tweet: String,
}

impl LocationString {
    /// True when profile and tweet districts coincide — the paper's
    /// *matched string*.
    pub fn is_matched(&self) -> bool {
        self.state_profile == self.state_tweet && self.county_profile == self.county_tweet
    }

    /// The `(state, county)` pair of the tweet side.
    pub fn tweet_key(&self) -> (&str, &str) {
        (&self.state_tweet, &self.county_tweet)
    }

    /// Parses the `user#state#county#state#county` form.
    ///
    /// Returns `None` unless exactly five `#`-separated fields are present
    /// and the first parses as a user id.
    pub fn parse(s: &str) -> Option<Self> {
        let mut parts = s.split('#');
        let user = parts.next()?.trim().parse().ok()?;
        let state_profile = parts.next()?.to_string();
        let county_profile = parts.next()?.to_string();
        let state_tweet = parts.next()?.to_string();
        let county_tweet = parts.next()?.to_string();
        if parts.next().is_some() {
            return None;
        }
        Some(LocationString {
            user,
            state_profile,
            county_profile,
            state_tweet,
            county_tweet,
        })
    }
}

impl fmt::Display for LocationString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}#{}#{}#{}#{}",
            self.user, self.state_profile, self.county_profile, self.state_tweet, self.county_tweet
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_example() -> LocationString {
        // Table I, first row (user id redacted in the OCR; any id works).
        LocationString {
            user: 100,
            state_profile: "Seoul".into(),
            county_profile: "Yangchun-gu".into(),
            state_tweet: "Seoul".into(),
            county_tweet: "Seodaemun-gu".into(),
        }
    }

    #[test]
    fn display_matches_paper_format() {
        assert_eq!(
            paper_example().to_string(),
            "100#Seoul#Yangchun-gu#Seoul#Seodaemun-gu"
        );
    }

    #[test]
    fn parse_roundtrip() {
        let s = paper_example();
        let parsed = LocationString::parse(&s.to_string()).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(LocationString::parse("1#a#b#c").is_none()); // 4 fields
        assert!(LocationString::parse("1#a#b#c#d#e").is_none()); // 6 fields
        assert!(LocationString::parse("x#a#b#c#d").is_none()); // bad id
        assert!(LocationString::parse("").is_none());
    }

    #[test]
    fn matched_detection() {
        let mut s = paper_example();
        assert!(!s.is_matched());
        s.county_tweet = "Yangchun-gu".into();
        assert!(s.is_matched());
        // Same county name in a different state does NOT match.
        s.state_tweet = "Busan".into();
        assert!(!s.is_matched());
    }
}
