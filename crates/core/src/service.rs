//! The always-on incremental analysis service.
//!
//! The batch pipeline ([`crate::pipeline`]) recomputes the world per
//! query; [`AnalysisSession`] keeps the §III-B state live instead. An
//! arriving tweet costs one kept-cohort probe, one geocode, one merged-
//! entry bump, and a re-sort of that author's small merged list (its
//! length is the author's *distinct* district count) — after which every
//! query is a read over state that is already grouped. The correctness
//! contract, pinned by property tests: after ingesting any prefix of a
//! stream, [`SessionQuery::execute`] with no modifiers returns the same
//! funnel, grouped users, and kept profiles as running the fused batch
//! pipeline over that same prefix.
//!
//! Three layers:
//!
//! * [`AnalysisSession`] — in-memory incremental state: the kept cohort
//!   (stage 1 runs once, at construction), per-user merged district
//!   counts maintained in grouping order, the funnel counters, and a
//!   per-user ring of day-bucketed counts for windowed queries.
//! * [`SessionQuery`] — the query builder over live state:
//!   `session.query().top_k(3).window(7).execute()`. Windowed answers
//!   re-aggregate from the day buckets and tie-break by *global*
//!   first-seen order (the window narrows counts, not arrival history);
//!   `top_k(k)` truncates each user's merged list to its top `k` entries.
//! * [`DurableSession`] — the service shell: every ingest is WAL-appended
//!   before it touches state, [`DurableSession::checkpoint`] persists a
//!   [`SessionSnapshot`] frame (see [`stir_tweetstore::snapshot`]), and
//!   [`DurableSession::open`] resumes from the newest intact checkpoint
//!   plus a WAL tail replay — never the whole corpus — surviving torn
//!   WAL tails and torn checkpoint frames alike.
//! * [`ShardedDurableSession`] — the same shell over one WAL *per user
//!   shard* (placement by [`stir_tweetstore::shard_of`]): each shard's
//!   torn tail truncates independently, and a checkpoint frame carries
//!   per-shard replay ordinals so resume replays only each shard's tail.
//!
//! Snapshot format (version 1, all integers LE): version, interner length
//! (guard — the snapshot's district ids are indexes into the pipeline's
//! interner and are meaningless under a different vocabulary), ingest
//! ordinal, window capacity, latest day, the 14 funnel counters, the kept
//! map, then per user the profile id, merged entries `(district, count,
//! first-seen)`, and live day buckets.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use stir_geoindex::Point;
use stir_geokr::service::Geocoder;
use stir_tweetstore::persist::PersistError;
use stir_tweetstore::{
    append_snapshot, latest_snapshot, shard_of, SegmentRef, ShardedStore, TweetRecord, TweetStore,
    Wal,
};

use crate::funnel::CollectionFunnel;
use crate::grouping::{materialize_user, merged_cmp, GroupedUser, MergedId, TieBreak};
use crate::input::ProfileRow;
use crate::intern::DistrictId;
use crate::metrics::PipelineMetrics;
use crate::pipeline::{resolve_one, AnalysisResult, RefinementPipeline};
use crate::sketch::{plan_shards, plan_store, SketchPlan};
use crate::topk::TopKGroup;

/// Snapshot payload format version.
const SNAP_VERSION: u32 = 1;

/// Default ring capacity: windowed queries can look back this many days.
const DEFAULT_WINDOW_DAYS: u64 = 32;

const SECONDS_PER_DAY: u64 = 86_400;

/// One day's district counts for one user.
#[derive(Clone, Debug)]
struct DayBucket {
    day: u64,
    counts: Vec<(DistrictId, u64)>,
}

/// One user's live state: the all-time merged list kept in grouping order
/// (so rank queries are a scan) plus the day ring behind windowed queries.
#[derive(Clone, Debug)]
struct SessionUser {
    profile: DistrictId,
    merged: Vec<MergedId>,
    /// Monotone first-seen counter (merged is sorted, so its length at
    /// insert time no longer encodes arrival order).
    next_seen: u32,
    /// Day buckets within the window horizon, unordered; buckets that
    /// fall behind `latest_day - window_cap` are evicted on insert.
    ring: Vec<DayBucket>,
}

impl SessionUser {
    fn matched_rank(&self) -> Option<usize> {
        self.merged
            .iter()
            .position(|&(d, _, _)| d == self.profile)
            .map(|i| i + 1)
    }
}

/// Everything a snapshot carries, decoded — the bridge between
/// [`SessionSnapshot`] bytes and a live [`AnalysisSession`].
struct DecodedState {
    ingested: u64,
    window_cap: u64,
    latest_day: Option<u64>,
    funnel: CollectionFunnel,
    kept: HashMap<u64, DistrictId>,
    users: HashMap<u64, SessionUser>,
}

/// Why a [`SessionSnapshot`] could not be restored.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The payload ended mid-field.
    Truncated,
    /// The payload's version is not one this build reads.
    BadVersion(u32),
    /// The snapshot was taken against a different district vocabulary —
    /// its interned ids would alias arbitrary districts here.
    InternerMismatch {
        /// Interner length the snapshot was taken under.
        snapshot: usize,
        /// Interner length of the pipeline restoring it.
        pipeline: usize,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot payload truncated"),
            SnapshotError::BadVersion(v) => write!(f, "unknown snapshot version {v}"),
            SnapshotError::InternerMismatch { snapshot, pipeline } => write!(
                f,
                "snapshot taken under a {snapshot}-district vocabulary, pipeline has {pipeline}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A serialized [`AnalysisSession`] state — what
/// [`AnalysisSession::snapshot`] produces and
/// [`AnalysisSession::restore`] consumes. The bytes are self-contained
/// (they embed the funnel and the kept cohort, so restoring needs no
/// profile replay) and opaque to the store layer that persists them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionSnapshot {
    bytes: Vec<u8>,
}

impl SessionSnapshot {
    /// Wraps raw bytes (validation happens at restore).
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        SessionSnapshot { bytes }
    }

    /// The serialized payload.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    fn decode(&self, interner_len: usize) -> Result<DecodedState, SnapshotError> {
        let mut r = Reader {
            bytes: &self.bytes,
            at: 0,
        };
        let version = r.u32()?;
        if version != SNAP_VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let snap_interner = r.u32()? as usize;
        if snap_interner != interner_len {
            return Err(SnapshotError::InternerMismatch {
                snapshot: snap_interner,
                pipeline: interner_len,
            });
        }
        let ingested = r.u64()?;
        let window_cap = r.u64()?;
        let latest_day = match r.u8()? {
            0 => None,
            _ => Some(r.u64()?),
        };
        let funnel = CollectionFunnel {
            users_collected: r.u64()?,
            users_well_defined: r.u64()?,
            users_vague: r.u64()?,
            users_insufficient: r.u64()?,
            users_ambiguous: r.u64()?,
            users_foreign: r.u64()?,
            users_empty: r.u64()?,
            users_profile_coordinates: r.u64()?,
            tweets_total: r.u64()?,
            tweets_with_gps: r.u64()?,
            tweets_gps_unresolvable: r.u64()?,
            strings_built: r.u64()?,
            users_final: r.u64()?,
            yahoo_quota_days: r.u64()?,
        };
        let kept_len = r.u64()? as usize;
        let mut kept = HashMap::with_capacity(kept_len);
        for _ in 0..kept_len {
            let user = r.u64()?;
            let district = DistrictId(r.u32()?);
            kept.insert(user, district);
        }
        let users_len = r.u64()? as usize;
        let mut users = HashMap::with_capacity(users_len);
        for _ in 0..users_len {
            let user = r.u64()?;
            let profile = DistrictId(r.u32()?);
            let next_seen = r.u32()?;
            let merged_len = r.u32()? as usize;
            let mut merged = Vec::with_capacity(merged_len);
            for _ in 0..merged_len {
                let district = DistrictId(r.u32()?);
                let count = r.u64()?;
                let first_seen = r.u32()?;
                merged.push((district, count, first_seen));
            }
            let ring_len = r.u32()? as usize;
            let mut ring = Vec::with_capacity(ring_len);
            for _ in 0..ring_len {
                let day = r.u64()?;
                let counts_len = r.u32()? as usize;
                let mut counts = Vec::with_capacity(counts_len);
                for _ in 0..counts_len {
                    let district = DistrictId(r.u32()?);
                    let count = r.u64()?;
                    counts.push((district, count));
                }
                ring.push(DayBucket { day, counts });
            }
            users.insert(
                user,
                SessionUser {
                    profile,
                    merged,
                    next_seen,
                    ring,
                },
            );
        }
        Ok(DecodedState {
            ingested,
            window_cap,
            latest_day,
            funnel,
            kept,
            users,
        })
    }
}

/// Little-endian field reader over a snapshot payload.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], SnapshotError> {
        let end = self.at.checked_add(n).ok_or(SnapshotError::Truncated)?;
        let slice = self
            .bytes
            .get(self.at..end)
            .ok_or(SnapshotError::Truncated)?;
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// The always-on incremental engine: stage 1 (profile selection) runs
/// once at construction, then every [`ingest`](AnalysisSession::ingest)
/// advances the live grouped state by exactly the work one tweet is
/// worth. Queries ([`AnalysisSession::query`]) read that state without
/// recomputation; an unmodified query is byte-identical to the fused
/// batch pipeline over the same tweets.
pub struct AnalysisSession<'g> {
    pipeline: RefinementPipeline<'g>,
    backend: Box<dyn Geocoder + 'g>,
    kept: HashMap<u64, DistrictId>,
    users: HashMap<u64, SessionUser>,
    funnel: CollectionFunnel,
    /// Tweets ingested — the WAL replay ordinal: a restored session with
    /// this many records already applied resumes at this offset.
    ingested: u64,
    latest_day: Option<u64>,
    window_cap: u64,
    /// Quota days carried over from a restored snapshot (the rebuilt
    /// backend's own counter restarts at zero).
    quota_base: u64,
}

impl<'g> AnalysisSession<'g> {
    /// Builds a session: runs stage 1 over `profiles` (fixing the kept
    /// cohort and the select-side funnel counters) and assembles the
    /// pipeline's configured geocoding backend for per-tweet resolution.
    pub fn new<PI>(pipeline: RefinementPipeline<'g>, profiles: PI) -> Self
    where
        PI: IntoIterator<Item = ProfileRow>,
    {
        let mut funnel = CollectionFunnel::default();
        let kept = pipeline.select_users(profiles, &mut funnel);
        let backend = pipeline.build_backend();
        AnalysisSession {
            pipeline,
            backend,
            kept,
            users: HashMap::new(),
            funnel,
            ingested: 0,
            latest_day: None,
            window_cap: DEFAULT_WINDOW_DAYS,
            quota_base: 0,
        }
    }

    /// Builds a session whose state already covers every record in
    /// `store` — the warm-start counterpart of replaying the corpus one
    /// [`ingest`](AnalysisSession::ingest) at a time.
    ///
    /// When the pipeline opts into sketches (`PipelineBuilder::sketches`,
    /// gazetteer backend) and every sealed segment yields a group sketch,
    /// the sealed bulk of the store is bulk-merged straight from the
    /// per-segment sketches — per-user merged lists reassembled from
    /// `(count, min global ordinal)` pairs, day rings from the sketch day
    /// buckets, funnel counters from the day totals — and only the open
    /// tail replays record-wise. Otherwise the whole store replays.
    /// Either way the resulting session answers queries identically to a
    /// cold session fed the same records in order.
    pub fn from_store<PI>(
        pipeline: RefinementPipeline<'g>,
        profiles: PI,
        store: &TweetStore,
    ) -> Self
    where
        PI: IntoIterator<Item = ProfileRow>,
    {
        let mut session = Self::new(pipeline, profiles);
        match session
            .pipeline
            .sketch_fingerprint()
            .and_then(|fp| plan_store(store, fp))
        {
            Some(plan) => session.warm_start(&plan),
            None => session.replay_segments(store),
        }
        session
    }

    /// [`AnalysisSession::from_store`] over a sharded store: sealed
    /// segments bulk-merge from sketches shard by shard (global ordinals
    /// accumulate in shard order, matching the batch scan), tails replay
    /// record-wise. Falls back to a full replay when any shard is missing
    /// a sketch or the pipeline does not opt into them.
    pub fn from_shards<PI>(
        pipeline: RefinementPipeline<'g>,
        profiles: PI,
        store: &ShardedStore,
    ) -> Self
    where
        PI: IntoIterator<Item = ProfileRow>,
    {
        let mut session = Self::new(pipeline, profiles);
        match session
            .pipeline
            .sketch_fingerprint()
            .and_then(|fp| plan_shards(store, fp))
        {
            Some(plan) => session.warm_start(&plan),
            None => {
                for shard in store.shards() {
                    session.replay_segments(shard);
                }
            }
        }
        session
    }

    /// Bulk-merges every sealed sketch into live state, then replays the
    /// open tails record-wise through the ordinary ingest path.
    fn warm_start(&mut self, plan: &SketchPlan<'_>) {
        self.merge_sealed(plan);
        for (seg, _) in &plan.tails {
            self.replay_one(seg);
        }
    }

    /// Folds the sketched (sealed) segments of a plan into session state.
    ///
    /// Per-user reconstruction mirrors the batch delta merge: districts
    /// accumulate `(count, min global ordinal)` across segments, dense
    /// first-seen ids are assigned in min-ordinal order (the order a
    /// record-wise replay would have discovered them, since every user's
    /// records live in one store and sealed ordinals precede the tail's),
    /// and the merged list is sorted with the shared grouping comparator.
    /// Day rings rebuild from the sketch day buckets, keeping only days
    /// within the window horizon — exactly the buckets a windowed query
    /// can reach.
    fn merge_sealed(&mut self, plan: &SketchPlan<'_>) {
        struct Warm {
            profile: DistrictId,
            districts: HashMap<DistrictId, (u64, u64)>,
            days: HashMap<u64, Vec<(DistrictId, u64)>>,
        }
        let mut warm: HashMap<u64, Warm> = HashMap::new();
        let gaz_to_interned = self.pipeline.gaz_to_interned();
        for (sketch, base, seg) in &plan.sketched {
            self.ingested += seg.len() as u64;
            for t in &sketch.day_totals {
                self.funnel.tweets_total += t.records;
                self.funnel.tweets_with_gps += t.gps_records;
            }
            for u in &sketch.users {
                let Some(&profile) = self.kept.get(&u.user) else {
                    continue;
                };
                let w = warm.entry(u.user).or_insert_with(|| Warm {
                    profile,
                    districts: HashMap::new(),
                    days: HashMap::new(),
                });
                for d in sketch.days_of(u) {
                    self.funnel.tweets_gps_unresolvable += d.unresolvable;
                    if !sketch.entries_of(d).is_empty() {
                        let latest = self.latest_day.get_or_insert(d.day);
                        *latest = (*latest).max(d.day);
                    }
                    for e in sketch.entries_of(d) {
                        let Some(&interned) = gaz_to_interned.get(e.district as usize) else {
                            continue;
                        };
                        self.funnel.strings_built += e.count;
                        let slot = w.districts.entry(interned).or_insert((0, u64::MAX));
                        slot.0 += e.count;
                        slot.1 = slot.1.min(base + u64::from(e.first_slot));
                        let day = w.days.entry(d.day).or_default();
                        match day.iter_mut().find(|(dd, _)| *dd == interned) {
                            Some(entry) => entry.1 += e.count,
                            None => day.push((interned, e.count)),
                        }
                    }
                }
            }
        }
        let horizon = self
            .latest_day
            .map(|l| l.saturating_sub(self.window_cap - 1));
        let interner = self.pipeline.interner();
        for (user, w) in warm {
            if w.districts.is_empty() {
                // Only unresolvable fixes — a cold replay never opens
                // state for such a user either.
                continue;
            }
            let mut ents: Vec<(DistrictId, u64, u64)> = w
                .districts
                .into_iter()
                .map(|(d, (count, ord))| (d, count, ord))
                .collect();
            ents.sort_unstable_by_key(|&(_, _, ord)| ord);
            let mut merged: Vec<MergedId> = ents
                .iter()
                .enumerate()
                .map(|(i, &(d, count, _))| (d, count, i as u32))
                .collect();
            let next_seen = merged.len() as u32;
            merged.sort_unstable_by(|a, b| {
                merged_cmp(a, b, TieBreak::FirstSeen, w.profile, interner)
            });
            let mut ring: Vec<DayBucket> = w
                .days
                .into_iter()
                .filter(|&(day, _)| horizon.is_none_or(|h| day >= h))
                .map(|(day, counts)| DayBucket { day, counts })
                .collect();
            ring.sort_unstable_by_key(|b| b.day);
            self.users.insert(
                user,
                SessionUser {
                    profile: w.profile,
                    merged,
                    next_seen,
                    ring,
                },
            );
        }
    }

    /// Replays every decodable record of `store` through the ordinary
    /// ingest path — the cold fallback when sketches are unavailable.
    fn replay_segments(&mut self, store: &TweetStore) {
        for seg in store.segments() {
            self.replay_one(&seg);
        }
    }

    fn replay_one(&mut self, seg: &SegmentRef<'_>) {
        for slot in 0..seg.len() as u32 {
            if let Ok(h) = seg.header(slot) {
                self.ingest(h.user, h.timestamp, h.gps);
            }
        }
    }

    /// Sets the windowed-query horizon in days (default 32). Buckets
    /// older than this fall off the ring; call before ingesting.
    pub fn with_window_capacity(mut self, days: u64) -> Self {
        debug_assert_eq!(self.ingested, 0, "set the window before ingesting");
        self.window_cap = days.max(1);
        self
    }

    /// The underlying pipeline (interner, gazetteer, config).
    pub fn pipeline(&self) -> &RefinementPipeline<'g> {
        &self.pipeline
    }

    /// Tweets ingested so far — also the WAL replay ordinal this
    /// session's state covers.
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Users currently holding at least one grouped string.
    pub fn users_live(&self) -> usize {
        self.users.len()
    }

    /// Ingests one tweet, advancing funnel and grouped state exactly as
    /// the batch pipeline would have counted it.
    pub fn ingest(&mut self, user: u64, timestamp: u64, gps: Option<Point>) {
        self.ingested += 1;
        self.funnel.tweets_total += 1;
        let Some(p) = gps else { return };
        self.funnel.tweets_with_gps += 1;
        let Some(&profile) = self.kept.get(&user) else {
            return;
        };
        let Some(gaz_id) = resolve_one(self.backend.as_ref(), p) else {
            self.funnel.tweets_gps_unresolvable += 1;
            return;
        };
        self.funnel.strings_built += 1;
        let district = self.pipeline.gaz_to_interned()[gaz_id.0 as usize];

        let state = self.users.entry(user).or_insert_with(|| SessionUser {
            profile,
            merged: Vec::new(),
            next_seen: 0,
            ring: Vec::new(),
        });
        match state.merged.iter_mut().find(|(d, _, _)| *d == district) {
            Some(entry) => entry.1 += 1,
            None => {
                let seen = state.next_seen;
                state.next_seen += 1;
                state.merged.push((district, 1, seen));
            }
        }
        // Same total order as the batch kernel; (count, first-seen) pairs
        // are unique per user, so incremental re-sorting converges on the
        // exact batch arrangement.
        let interner = self.pipeline.interner();
        state
            .merged
            .sort_unstable_by(|a, b| merged_cmp(a, b, TieBreak::FirstSeen, profile, interner));

        // Day ring: bump (or open) this day's bucket, advance the global
        // horizon, drop buckets that fell off it.
        let day = timestamp / SECONDS_PER_DAY;
        let latest = self.latest_day.get_or_insert(day);
        *latest = (*latest).max(day);
        let horizon = latest.saturating_sub(self.window_cap - 1);
        match state.ring.iter_mut().find(|b| b.day == day) {
            Some(bucket) => match bucket.counts.iter_mut().find(|(d, _)| *d == district) {
                Some(entry) => entry.1 += 1,
                None => bucket.counts.push((district, 1)),
            },
            None => {
                if day >= horizon {
                    state.ring.push(DayBucket {
                        day,
                        counts: vec![(district, 1)],
                    });
                }
                state.ring.retain(|b| b.day >= horizon);
            }
        }
    }

    /// The live Top-k group of one user (`None` if not yet grouped) —
    /// an id-compare scan of the user's already-sorted merged list.
    pub fn group_of(&self, user: u64) -> Option<TopKGroup> {
        self.users
            .get(&user)
            .map(|s| TopKGroup::from_rank(s.matched_rank()))
    }

    /// Starts a query over live state.
    pub fn query(&self) -> SessionQuery<'_, 'g> {
        SessionQuery {
            session: self,
            top_k: None,
            window_days: None,
        }
    }

    /// Serializes the full incremental state (see the module docs for the
    /// format). Restoring the result via [`AnalysisSession::restore`]
    /// then re-ingesting the stream from ordinal
    /// [`AnalysisSession::ingested`] reproduces this session exactly.
    pub fn snapshot(&self) -> SessionSnapshot {
        let mut b = Vec::with_capacity(256 + self.users.len() * 64);
        b.extend_from_slice(&SNAP_VERSION.to_le_bytes());
        b.extend_from_slice(&(self.pipeline.interner().len() as u32).to_le_bytes());
        b.extend_from_slice(&self.ingested.to_le_bytes());
        b.extend_from_slice(&self.window_cap.to_le_bytes());
        match self.latest_day {
            None => b.push(0),
            Some(day) => {
                b.push(1);
                b.extend_from_slice(&day.to_le_bytes());
            }
        }
        let f = &self.funnel;
        for field in [
            f.users_collected,
            f.users_well_defined,
            f.users_vague,
            f.users_insufficient,
            f.users_ambiguous,
            f.users_foreign,
            f.users_empty,
            f.users_profile_coordinates,
            f.tweets_total,
            f.tweets_with_gps,
            f.tweets_gps_unresolvable,
            f.strings_built,
            f.users_final,
            self.quota_days(),
        ] {
            b.extend_from_slice(&field.to_le_bytes());
        }
        b.extend_from_slice(&(self.kept.len() as u64).to_le_bytes());
        let mut kept: Vec<(u64, DistrictId)> = self.kept.iter().map(|(&u, &d)| (u, d)).collect();
        kept.sort_unstable_by_key(|&(u, _)| u);
        for (user, district) in kept {
            b.extend_from_slice(&user.to_le_bytes());
            b.extend_from_slice(&district.0.to_le_bytes());
        }
        b.extend_from_slice(&(self.users.len() as u64).to_le_bytes());
        let mut ids: Vec<u64> = self.users.keys().copied().collect();
        ids.sort_unstable();
        for user in ids {
            let s = &self.users[&user];
            b.extend_from_slice(&user.to_le_bytes());
            b.extend_from_slice(&s.profile.0.to_le_bytes());
            b.extend_from_slice(&s.next_seen.to_le_bytes());
            b.extend_from_slice(&(s.merged.len() as u32).to_le_bytes());
            for &(district, count, first_seen) in &s.merged {
                b.extend_from_slice(&district.0.to_le_bytes());
                b.extend_from_slice(&count.to_le_bytes());
                b.extend_from_slice(&first_seen.to_le_bytes());
            }
            b.extend_from_slice(&(s.ring.len() as u32).to_le_bytes());
            for bucket in &s.ring {
                b.extend_from_slice(&bucket.day.to_le_bytes());
                b.extend_from_slice(&(bucket.counts.len() as u32).to_le_bytes());
                for &(district, count) in &bucket.counts {
                    b.extend_from_slice(&district.0.to_le_bytes());
                    b.extend_from_slice(&count.to_le_bytes());
                }
            }
        }
        SessionSnapshot { bytes: b }
    }

    /// Rebuilds a session from a snapshot, without replaying the corpus.
    /// The pipeline must carry the same district vocabulary the snapshot
    /// was taken under ([`SnapshotError::InternerMismatch`] otherwise);
    /// profiles are not needed — the kept cohort and funnel ride in the
    /// snapshot.
    pub fn restore(
        pipeline: RefinementPipeline<'g>,
        snapshot: &SessionSnapshot,
    ) -> Result<Self, SnapshotError> {
        let state = snapshot.decode(pipeline.interner().len())?;
        Ok(Self::from_state(pipeline, state))
    }

    fn from_state(pipeline: RefinementPipeline<'g>, state: DecodedState) -> Self {
        let backend = pipeline.build_backend();
        AnalysisSession {
            pipeline,
            backend,
            kept: state.kept,
            users: state.users,
            funnel: state.funnel,
            ingested: state.ingested,
            latest_day: state.latest_day,
            window_cap: state.window_cap,
            quota_base: state.funnel.yahoo_quota_days,
        }
    }

    /// Quota-days consumed: snapshot carry-over plus the live backend's
    /// own accounting.
    fn quota_days(&self) -> u64 {
        self.quota_base + self.backend.traffic().quota_days
    }
}

/// A query over an [`AnalysisSession`]'s live state, built fluently:
///
/// ```ignore
/// let full = session.query().execute();                  // ≡ batch run
/// let week = session.query().window(7).execute();        // last 7 days
/// let brief = session.query().top_k(3).execute();        // ≤ 3 entries/user
/// ```
pub struct SessionQuery<'s, 'g> {
    session: &'s AnalysisSession<'g>,
    top_k: Option<usize>,
    window_days: Option<u64>,
}

impl SessionQuery<'_, '_> {
    /// Truncates each user's merged list to its top `k` entries; a
    /// matched rank beyond `k` reports as `None` (the matched district
    /// fell below the cut).
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }

    /// Restricts counts to the last `n` days (relative to the newest
    /// ingested day, inclusive), re-aggregated from the day ring. `n` is
    /// clamped to the session's window capacity; ties between equal
    /// in-window counts break by *global* first-seen order. Users with no
    /// in-window activity are omitted.
    pub fn window(mut self, last_n_days: u64) -> Self {
        self.window_days = Some(last_n_days);
        self
    }

    /// Materializes the answer. With no modifiers the result's funnel,
    /// users, and kept profiles are byte-identical to the fused batch
    /// pipeline run over the tweets ingested so far.
    pub fn execute(self) -> AnalysisResult {
        let s = self.session;
        let interner = s.pipeline.interner();
        let mut ids: Vec<u64> = s.users.keys().copied().collect();
        ids.sort_unstable();
        let mut users = Vec::with_capacity(ids.len());
        for user in ids {
            let u = &s.users[&user];
            let mut gu = match self.window_days {
                None => materialize_user(user, u.profile, &u.merged, interner),
                Some(_) => match self.windowed_user(user, u) {
                    Some(gu) => gu,
                    None => continue,
                },
            };
            if let Some(k) = self.top_k {
                gu.entries.truncate(k);
                gu.matched_rank = gu.matched_rank.filter(|&r| r <= k);
            }
            users.push(gu);
        }
        let mut funnel = s.funnel;
        funnel.users_final = users.len() as u64;
        funnel.yahoo_quota_days = s.quota_days();
        let kept_profiles = s
            .kept
            .iter()
            .map(|(&user, &id)| {
                let (state, county) = interner.resolve(id);
                (user, (state.to_string(), county.to_string()))
            })
            .collect();
        AnalysisResult {
            funnel,
            users,
            kept_profiles,
            metrics: PipelineMetrics::default(),
        }
    }

    /// One user re-aggregated over the window, or `None` when nothing
    /// landed in it.
    fn windowed_user(&self, user: u64, u: &SessionUser) -> Option<GroupedUser> {
        let s = self.session;
        let n = self.window_days.unwrap_or(0).min(s.window_cap);
        if n == 0 {
            return None;
        }
        let latest = s.latest_day?;
        let horizon = latest.saturating_sub(n - 1);
        let mut merged: Vec<MergedId> = Vec::new();
        for bucket in u.ring.iter().filter(|b| b.day >= horizon) {
            for &(district, count) in &bucket.counts {
                match merged.iter_mut().find(|(d, _, _)| *d == district) {
                    Some(entry) => entry.1 += count,
                    None => {
                        // Global first-seen order: every ringed district
                        // exists in the all-time merged list.
                        let first_seen = u
                            .merged
                            .iter()
                            .find(|(d, _, _)| *d == district)
                            .map(|&(_, _, seen)| seen)
                            .unwrap_or(u32::MAX);
                        merged.push((district, count, first_seen));
                    }
                }
            }
        }
        if merged.is_empty() {
            return None;
        }
        let interner = s.pipeline.interner();
        merged.sort_unstable_by(|a, b| merged_cmp(a, b, TieBreak::FirstSeen, u.profile, interner));
        Some(materialize_user(user, u.profile, &merged, interner))
    }
}

/// An [`AnalysisSession`] coupled to its durability shell: a WAL that
/// records every ingested tweet before it touches state, and a checkpoint
/// log of [`SessionSnapshot`] frames. [`DurableSession::open`] recovers
/// the WAL (torn tail truncated), restores the newest intact checkpoint
/// whose ordinal the recovered log still covers, and replays only the
/// tail — a restart is O(tail), not O(corpus).
pub struct DurableSession<'g> {
    session: AnalysisSession<'g>,
    wal: Wal,
    snap_path: PathBuf,
}

impl<'g> DurableSession<'g> {
    /// Opens (or resumes) the service from `wal_path` + `snap_path`.
    /// `profiles` is consumed only when no usable checkpoint exists (first
    /// boot, vocabulary change, or a checkpoint ahead of the recovered
    /// WAL — possible only if the WAL lost acknowledged-but-unsynced
    /// records the checkpoint had already covered).
    pub fn open<PI>(
        wal_path: &Path,
        snap_path: &Path,
        pipeline: RefinementPipeline<'g>,
        profiles: PI,
    ) -> Result<Self, PersistError>
    where
        PI: IntoIterator<Item = ProfileRow>,
    {
        let (store, recovered) = if wal_path.exists() {
            Wal::recover(wal_path)?
        } else {
            (TweetStore::new(), 0)
        };
        let wal = Wal::open(wal_path)?;
        let checkpoint = latest_snapshot(snap_path)?
            .filter(|frame| frame.ordinal <= recovered)
            .and_then(|frame| {
                SessionSnapshot::from_bytes(frame.payload)
                    .decode(pipeline.interner().len())
                    .ok()
            });
        let mut session = match checkpoint {
            Some(state) => AnalysisSession::from_state(pipeline, state),
            None => AnalysisSession::new(pipeline, profiles),
        };
        Self::replay_tail(&mut session, &store);
        Ok(DurableSession {
            session,
            wal,
            snap_path: snap_path.to_path_buf(),
        })
    }

    /// Replays WAL records the session's state does not cover yet.
    fn replay_tail(session: &mut AnalysisSession<'_>, store: &TweetStore) {
        for rec in store.scan_from(session.ingested()).flatten() {
            session.ingest(rec.user, rec.timestamp, rec.gps);
        }
    }

    /// Ingests one tweet: WAL first, then live state. Call
    /// [`DurableSession::sync`] to make acknowledged appends crash-safe.
    pub fn ingest(&mut self, rec: &TweetRecord) -> Result<(), PersistError> {
        self.wal.append(rec)?;
        self.session.ingest(rec.user, rec.timestamp, rec.gps);
        Ok(())
    }

    /// Fsyncs the WAL — the ingest durability point.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        self.wal.sync()
    }

    /// Persists the current state as a checkpoint frame. The WAL is
    /// synced first so the checkpoint can never cover records the log
    /// does not hold.
    pub fn checkpoint(&mut self) -> Result<(), PersistError> {
        self.wal.sync()?;
        let snap = self.session.snapshot();
        append_snapshot(&self.snap_path, self.session.ingested(), snap.as_bytes())
    }

    /// The live session.
    pub fn session(&self) -> &AnalysisSession<'g> {
        &self.session
    }

    /// Starts a query over live state.
    pub fn query(&self) -> SessionQuery<'_, 'g> {
        self.session.query()
    }
}

/// Serializes a sharded checkpoint payload: shard count, one replay
/// ordinal per shard, then the opaque session snapshot bytes.
fn encode_sharded_snapshot(ordinals: &[u64], snap: &SessionSnapshot) -> Vec<u8> {
    let mut b = Vec::with_capacity(4 + ordinals.len() * 8 + snap.as_bytes().len());
    b.extend_from_slice(&(ordinals.len() as u32).to_le_bytes());
    for &o in ordinals {
        b.extend_from_slice(&o.to_le_bytes());
    }
    b.extend_from_slice(snap.as_bytes());
    b
}

/// Inverse of [`encode_sharded_snapshot`]. Returns `None` when the payload
/// is malformed or was written for a different shard count — placement
/// depends on the count, so such a checkpoint cannot be resumed.
fn decode_sharded_snapshot(payload: &[u8], shards: usize) -> Option<(Vec<u64>, SessionSnapshot)> {
    let n = u32::from_le_bytes(payload.get(..4)?.try_into().ok()?) as usize;
    if n != shards {
        return None;
    }
    let mut ordinals = Vec::with_capacity(n);
    let mut off = 4;
    for _ in 0..n {
        ordinals.push(u64::from_le_bytes(
            payload.get(off..off + 8)?.try_into().ok()?,
        ));
        off += 8;
    }
    Some((
        ordinals,
        SessionSnapshot::from_bytes(payload[off..].to_vec()),
    ))
}

/// An [`AnalysisSession`] behind one WAL *per user shard*, the service
/// counterpart of [`stir_tweetstore::ShardedDurableStore`]. Every ingest
/// is appended to the author's shard log (placement by
/// [`stir_tweetstore::shard_of`] — the store layer's invariant) before it
/// touches state; a crash that tears one shard's tail truncates only that
/// shard on recovery. Checkpoint frames embed per-shard replay ordinals,
/// so [`ShardedDurableSession::open`] replays each shard only from where
/// the newest usable checkpoint left it. Query results are identical to
/// the single-WAL session over the same tweets: live state is keyed per
/// user and every user's records live in exactly one shard, in append
/// order.
pub struct ShardedDurableSession<'g> {
    session: AnalysisSession<'g>,
    wals: Vec<Wal>,
    shard_counts: Vec<u64>,
    snap_path: PathBuf,
}

impl<'g> ShardedDurableSession<'g> {
    /// Opens (or resumes) the service from `dir`, which holds one
    /// `wal-NNN.log` per shard plus a `session.snap` checkpoint log.
    /// Every shard's torn tail is truncated independently; a checkpoint
    /// is used only if it was written for the same shard count and every
    /// per-shard ordinal it covers survived that shard's recovery.
    /// `profiles` is consumed only when no usable checkpoint exists.
    pub fn open<PI>(
        dir: &Path,
        shards: usize,
        pipeline: RefinementPipeline<'g>,
        profiles: PI,
    ) -> Result<Self, PersistError>
    where
        PI: IntoIterator<Item = ProfileRow>,
    {
        let shards = shards.max(1);
        std::fs::create_dir_all(dir)?;
        let mut stores = Vec::with_capacity(shards);
        let mut recovered = Vec::with_capacity(shards);
        let mut wals = Vec::with_capacity(shards);
        for i in 0..shards {
            let path = stir_tweetstore::shard::wal_path(dir, i);
            let (store, count) = if path.exists() {
                Wal::recover(&path)?
            } else {
                (TweetStore::new(), 0)
            };
            stores.push(store);
            recovered.push(count);
            wals.push(Wal::open(&path)?);
        }
        let snap_path = dir.join("session.snap");
        let checkpoint = latest_snapshot(&snap_path)?
            .and_then(|frame| decode_sharded_snapshot(&frame.payload, shards))
            .filter(|(ordinals, _)| ordinals.iter().zip(&recovered).all(|(o, r)| o <= r))
            .and_then(|(ordinals, snap)| {
                snap.decode(pipeline.interner().len())
                    .ok()
                    .map(|state| (ordinals, state))
            });
        let (replay_from, mut session) = match checkpoint {
            Some((ordinals, state)) => (ordinals, AnalysisSession::from_state(pipeline, state)),
            None => (vec![0; shards], AnalysisSession::new(pipeline, profiles)),
        };
        for (store, &from) in stores.iter().zip(&replay_from) {
            for rec in store.scan_from(from).flatten() {
                session.ingest(rec.user, rec.timestamp, rec.gps);
            }
        }
        Ok(ShardedDurableSession {
            session,
            wals,
            shard_counts: recovered,
            snap_path,
        })
    }

    /// Shard count this service was opened with.
    pub fn shard_count(&self) -> usize {
        self.wals.len()
    }

    /// Ingests one tweet: the author's shard WAL first, then live state.
    /// Call [`ShardedDurableSession::sync`] to make acknowledged appends
    /// crash-safe.
    pub fn ingest(&mut self, rec: &TweetRecord) -> Result<(), PersistError> {
        let shard = shard_of(rec.user, self.wals.len());
        self.wals[shard].append(rec)?;
        self.shard_counts[shard] += 1;
        self.session.ingest(rec.user, rec.timestamp, rec.gps);
        Ok(())
    }

    /// Fsyncs every shard WAL — the ingest durability point.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        for wal in &mut self.wals {
            wal.sync()?;
        }
        Ok(())
    }

    /// Persists the current state as a checkpoint frame carrying each
    /// shard's replay ordinal. All shard WALs are synced first so the
    /// checkpoint can never cover records a log does not hold.
    pub fn checkpoint(&mut self) -> Result<(), PersistError> {
        self.sync()?;
        let snap = self.session.snapshot();
        let payload = encode_sharded_snapshot(&self.shard_counts, &snap);
        append_snapshot(&self.snap_path, self.session.ingested(), &payload)
    }

    /// The live session.
    pub fn session(&self) -> &AnalysisSession<'g> {
        &self.session
    }

    /// Starts a query over live state.
    pub fn query(&self) -> SessionQuery<'_, 'g> {
        self.session.query()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::TweetRow;
    use crate::pipeline::PipelineBuilder;
    use stir_geokr::Gazetteer;

    fn gaz() -> &'static Gazetteer {
        Box::leak(Box::new(Gazetteer::load()))
    }

    const YANGCHEON: (f64, f64) = (37.517, 126.866);
    const GANGNAM: (f64, f64) = (37.517, 127.047);

    fn profiles() -> Vec<ProfileRow> {
        vec![
            ProfileRow {
                user: 1,
                location_text: "Yangcheon-gu, Seoul".into(),
            },
            ProfileRow {
                user: 2,
                location_text: "Korea".into(),
            },
        ]
    }

    fn tweets() -> Vec<(u64, u64, Option<Point>)> {
        vec![
            (1, 100, Some(Point::new(YANGCHEON.0, YANGCHEON.1))),
            (1, 200, None),
            (
                1,
                SECONDS_PER_DAY + 50,
                Some(Point::new(GANGNAM.0, GANGNAM.1)),
            ),
            (2, 300, Some(Point::new(GANGNAM.0, GANGNAM.1))),
            (
                1,
                SECONDS_PER_DAY + 90,
                Some(Point::new(GANGNAM.0, GANGNAM.1)),
            ),
            (9, 400, Some(Point::new(GANGNAM.0, GANGNAM.1))),
        ]
    }

    fn batch_result(g: &'static Gazetteer) -> AnalysisResult {
        let pipeline = PipelineBuilder::new(g).build().unwrap();
        let rows: Vec<TweetRow> = tweets()
            .iter()
            .enumerate()
            .map(|(i, &(user, _, gps))| TweetRow {
                user,
                tweet_id: i as u64,
                gps,
            })
            .collect();
        pipeline.execute(profiles(), rows)
    }

    fn live_session(g: &'static Gazetteer) -> AnalysisSession<'static> {
        let pipeline = PipelineBuilder::new(g).build().unwrap();
        let mut session = AnalysisSession::new(pipeline, profiles());
        for (user, ts, gps) in tweets() {
            session.ingest(user, ts, gps);
        }
        session
    }

    fn assert_result_identical(a: &AnalysisResult, b: &AnalysisResult) {
        assert_eq!(a.funnel, b.funnel);
        assert_eq!(a.users, b.users);
        assert_eq!(a.kept_profiles, b.kept_profiles);
    }

    #[test]
    fn unmodified_query_equals_batch() {
        let g = gaz();
        let live = live_session(g).query().execute();
        assert_result_identical(&live, &batch_result(g));
    }

    #[test]
    fn snapshot_restore_roundtrip_continues_identically() {
        let g = gaz();
        let all = tweets();
        let pipeline = PipelineBuilder::new(g).build().unwrap();
        let mut session = AnalysisSession::new(pipeline, profiles());
        for &(user, ts, gps) in &all[..3] {
            session.ingest(user, ts, gps);
        }
        let snap = session.snapshot();
        drop(session);

        let pipeline = PipelineBuilder::new(g).build().unwrap();
        let mut restored = AnalysisSession::restore(pipeline, &snap).unwrap();
        assert_eq!(restored.ingested(), 3);
        for &(user, ts, gps) in &all[3..] {
            restored.ingest(user, ts, gps);
        }
        assert_result_identical(&restored.query().execute(), &batch_result(g));
    }

    #[test]
    fn restore_rejects_foreign_vocabulary_and_bad_bytes() {
        let g = gaz();
        let snap = live_session(g).snapshot();
        // Truncated payload.
        let cut = SessionSnapshot::from_bytes(snap.as_bytes()[..10].to_vec());
        let pipeline = PipelineBuilder::new(g).build().unwrap();
        match AnalysisSession::restore(pipeline, &cut) {
            Err(e) => assert_eq!(e, SnapshotError::Truncated),
            Ok(_) => panic!("truncated snapshot restored"),
        }
        // Wrong version.
        let mut bytes = snap.as_bytes().to_vec();
        bytes[0] = 99;
        let wrong = SessionSnapshot::from_bytes(bytes);
        let pipeline = PipelineBuilder::new(g).build().unwrap();
        match AnalysisSession::restore(pipeline, &wrong) {
            Err(e) => assert_eq!(e, SnapshotError::BadVersion(99)),
            Ok(_) => panic!("bad-version snapshot restored"),
        }
    }

    #[test]
    fn windowed_query_sees_only_recent_days() {
        let g = gaz();
        let session = live_session(g);
        // Day 1 is the latest; user 1 tweeted twice from Gangnam on day 1
        // and once from Yangcheon on day 0; user 2 only on day 0.
        let last_day = session.query().window(1).execute();
        assert_eq!(last_day.users.len(), 1, "only user 1 active on day 1");
        let u1 = &last_day.users[0];
        assert_eq!(u1.user, 1);
        assert_eq!(u1.entries.len(), 1, "only Gangnam within the window");
        assert_eq!(u1.entries[0].count, 2);
        assert_eq!(u1.matched_rank, None, "home district outside the window");
        // A two-day window covers everything → identical to all-time.
        let both = session.query().window(2).execute();
        let all = session.query().execute();
        assert_eq!(both.users, all.users);
    }

    #[test]
    fn top_k_truncates_entries_and_rank() {
        let g = gaz();
        let session = live_session(g);
        let full = session.query().execute();
        let u1_full = full.users.iter().find(|u| u.user == 1).unwrap();
        assert_eq!(u1_full.entries.len(), 2);
        assert_eq!(u1_full.matched_rank, Some(2));
        let cut = session.query().top_k(1).execute();
        let u1 = cut.users.iter().find(|u| u.user == 1).unwrap();
        assert_eq!(u1.entries.len(), 1);
        assert_eq!(
            u1.matched_rank, None,
            "rank-2 match falls below a top-1 cut"
        );
    }

    #[test]
    fn group_of_tracks_live_rank() {
        let g = gaz();
        let pipeline = PipelineBuilder::new(g).build().unwrap();
        let mut session = AnalysisSession::new(pipeline, profiles());
        assert_eq!(session.group_of(1), None);
        session.ingest(1, 0, Some(Point::new(GANGNAM.0, GANGNAM.1)));
        assert_eq!(session.group_of(1), Some(TopKGroup::None));
        session.ingest(1, 1, Some(Point::new(YANGCHEON.0, YANGCHEON.1)));
        assert_eq!(session.group_of(1), Some(TopKGroup::Top2));
        session.ingest(1, 2, Some(Point::new(YANGCHEON.0, YANGCHEON.1)));
        assert_eq!(session.group_of(1), Some(TopKGroup::Top1));
    }

    /// A store (or shard set) of tagged records shaped to exercise the
    /// warm-start merge: several sealed columnar segments with sketches,
    /// a live tail, multi-day spread, and an unresolvable fix.
    fn sketched_store(records: &[TweetRecord]) -> TweetStore {
        use crate::sketch::GazetteerSketcher;
        use stir_tweetstore::StoreFormat;
        let mut store = TweetStore::with_segment_bytes_and_format(512, StoreFormat::V2);
        store.set_sketcher(std::sync::Arc::new(GazetteerSketcher::new()));
        for r in records {
            store.append(r);
        }
        store
    }

    fn warm_corpus() -> Vec<TweetRecord> {
        let pts = [YANGCHEON, GANGNAM, (35.68, 139.69)]; // third unresolvable
        (0..300u64)
            .map(|i| {
                let (lat, lon) = pts[(i % 3) as usize];
                TweetRecord {
                    id: i,
                    user: 1 + i % 3,      // users 1 (kept), 2 (vague), 3 (unknown)
                    timestamp: i * 3_600, // 24 records/day
                    gps: (i % 7 != 6).then_some(Point::new(lat, lon)),
                    text: String::new(),
                }
            })
            .collect()
    }

    #[test]
    fn warm_start_from_sketched_store_matches_cold_replay() {
        let g = gaz();
        let records = warm_corpus();
        let store = sketched_store(&records);
        assert!(store.segments().len() > 2, "want sealed segments");

        let sketched = PipelineBuilder::new(g).sketches(true).build().unwrap();
        let warm = AnalysisSession::from_store(sketched, profiles(), &store);
        let mut cold = AnalysisSession::new(PipelineBuilder::new(g).build().unwrap(), profiles());
        for r in &records {
            cold.ingest(r.user, r.timestamp, r.gps);
        }
        assert_eq!(warm.ingested(), cold.ingested());
        assert_result_identical(&warm.query().execute(), &cold.query().execute());
        // Windowed queries re-aggregate from the warm-rebuilt day rings.
        for days in [1, 2, 3, 40] {
            assert_result_identical(
                &warm.query().window(days).execute(),
                &cold.query().window(days).execute(),
            );
        }
        assert_result_identical(
            &warm.query().top_k(1).execute(),
            &cold.query().top_k(1).execute(),
        );
    }

    #[test]
    fn warm_start_falls_back_to_replay_without_sketches() {
        let g = gaz();
        let records = warm_corpus();
        let store = sketched_store(&records);
        // Pipeline without the sketches opt-in: same answers, scan path.
        let plain = PipelineBuilder::new(g).build().unwrap();
        let replayed = AnalysisSession::from_store(plain, profiles(), &store);
        let mut cold = AnalysisSession::new(PipelineBuilder::new(g).build().unwrap(), profiles());
        for r in &records {
            cold.ingest(r.user, r.timestamp, r.gps);
        }
        assert_result_identical(&replayed.query().execute(), &cold.query().execute());
    }

    #[test]
    fn warm_start_from_shards_matches_single_store() {
        let g = gaz();
        let records = warm_corpus();
        let mut sharded =
            ShardedStore::with_segment_bytes_and_format(4, 512, stir_tweetstore::StoreFormat::V2);
        sharded.set_sketcher(std::sync::Arc::new(crate::sketch::GazetteerSketcher::new()));
        for r in &records {
            sharded.append(r);
        }
        let sketched = PipelineBuilder::new(g).sketches(true).build().unwrap();
        let warm = AnalysisSession::from_shards(sketched, profiles(), &sharded);
        let single = AnalysisSession::from_store(
            PipelineBuilder::new(g).sketches(true).build().unwrap(),
            profiles(),
            &sketched_store(&records),
        );
        assert_result_identical(&warm.query().execute(), &single.query().execute());
        assert_result_identical(
            &warm.query().window(2).execute(),
            &single.query().window(2).execute(),
        );
    }

    #[test]
    fn durable_session_resumes_from_checkpoint_plus_tail() {
        let g = gaz();
        let dir = std::env::temp_dir().join(format!("stir-svc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let wal_path = dir.join("session.wal");
        let snap_path = dir.join("session.snap");
        let all = tweets();
        let rec = |i: usize, t: &(u64, u64, Option<Point>)| TweetRecord {
            id: i as u64,
            user: t.0,
            timestamp: t.1,
            gps: t.2,
            text: String::new(),
        };
        {
            let pipeline = PipelineBuilder::new(g).build().unwrap();
            let mut svc =
                DurableSession::open(&wal_path, &snap_path, pipeline, profiles()).unwrap();
            for (i, t) in all[..4].iter().enumerate() {
                svc.ingest(&rec(i, t)).unwrap();
            }
            svc.checkpoint().unwrap();
            for (i, t) in all[4..].iter().enumerate() {
                svc.ingest(&rec(4 + i, t)).unwrap();
            }
            svc.sync().unwrap();
        }
        // Reopen: checkpoint covers 4 records, the WAL tail carries 2.
        let pipeline = PipelineBuilder::new(g).build().unwrap();
        let svc = DurableSession::open(&wal_path, &snap_path, pipeline, profiles()).unwrap();
        assert_eq!(svc.session().ingested(), all.len() as u64);
        assert_result_identical(&svc.query().execute(), &batch_result(g));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_session_matches_batch_across_reopen() {
        let g = gaz();
        let dir = std::env::temp_dir().join(format!("stir-svc-sharded-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let all = tweets();
        let rec = |i: usize, t: &(u64, u64, Option<Point>)| TweetRecord {
            id: i as u64,
            user: t.0,
            timestamp: t.1,
            gps: t.2,
            text: String::new(),
        };
        {
            let pipeline = PipelineBuilder::new(g).build().unwrap();
            let mut svc = ShardedDurableSession::open(&dir, 4, pipeline, profiles()).unwrap();
            assert_eq!(svc.shard_count(), 4);
            for (i, t) in all.iter().enumerate() {
                svc.ingest(&rec(i, t)).unwrap();
            }
            svc.sync().unwrap();
            assert_result_identical(&svc.query().execute(), &batch_result(g));
        }
        // Cold restart: per-shard tails replay into the same state.
        let pipeline = PipelineBuilder::new(g).build().unwrap();
        let svc = ShardedDurableSession::open(&dir, 4, pipeline, profiles()).unwrap();
        assert_eq!(svc.session().ingested(), all.len() as u64);
        assert_result_identical(&svc.query().execute(), &batch_result(g));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_session_recovers_torn_tails_on_every_shard() {
        let g = gaz();
        let dir = std::env::temp_dir().join(format!("stir-svc-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        const SHARDS: usize = 4;
        let all = tweets();
        let rec = |i: usize, t: &(u64, u64, Option<Point>)| TweetRecord {
            id: i as u64,
            user: t.0,
            timestamp: t.1,
            gps: t.2,
            text: String::new(),
        };
        {
            let pipeline = PipelineBuilder::new(g).build().unwrap();
            let mut svc = ShardedDurableSession::open(&dir, SHARDS, pipeline, profiles()).unwrap();
            for (i, t) in all[..3].iter().enumerate() {
                svc.ingest(&rec(i, t)).unwrap();
            }
            svc.checkpoint().unwrap();
            for (i, t) in all[3..].iter().enumerate() {
                svc.ingest(&rec(3 + i, t)).unwrap();
            }
            svc.sync().unwrap();
        }
        // Crash mid-append on EVERY shard at once: each log gains a torn
        // partial frame after the synced tail.
        let mut clean_lens = Vec::new();
        for i in 0..SHARDS {
            let path = stir_tweetstore::shard::wal_path(&dir, i);
            clean_lens.push(std::fs::metadata(&path).unwrap().len());
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            use std::io::Write;
            f.write_all(&[0x40, 0x00, 0x00, 0x00, 0xde, 0xad]).unwrap();
            f.sync_all().unwrap();
        }
        // Reopen: each shard truncates its own torn tail; the checkpoint
        // (3 records) plus per-shard tail replay rebuilds everything.
        let pipeline = PipelineBuilder::new(g).build().unwrap();
        let svc = ShardedDurableSession::open(&dir, SHARDS, pipeline, profiles()).unwrap();
        assert_eq!(svc.session().ingested(), all.len() as u64);
        assert_result_identical(&svc.query().execute(), &batch_result(g));
        for (i, &len) in clean_lens.iter().enumerate() {
            let path = stir_tweetstore::shard::wal_path(&dir, i);
            assert_eq!(
                std::fs::metadata(&path).unwrap().len(),
                len,
                "shard {i} torn tail not truncated"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
