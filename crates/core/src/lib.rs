//! # stir-core — the paper's contribution
//!
//! Implements the analysis of *"A Study of the Correlation between the
//! Spatial Attributes on Twitter"* (Lee & Hwang, ICDE 2012 Workshops):
//!
//! * [`string`] — the paper's location strings,
//!   `user#state_p#county_p#state_t#county_t` (Table I).
//! * [`grouping`] — the **text-based grouping method**: merge identical
//!   strings with counts, order per user, locate the *matched string*
//!   (profile district == tweet district) and its rank (Table II).
//! * [`topk`] — the Top-k user groups (Top-1 … Top-5, Top-6+, None);
//!   [`online`] — the same grouping maintained incrementally per key.
//! * [`service`] — the always-on incremental engine: [`AnalysisSession`]
//!   ingests one tweet at a time (byte-identical to the batch pipeline at
//!   every prefix), answers windowed/top-k queries over live state, and
//!   persists through WAL + checkpoint frames ([`DurableSession`]).
//! * [`pipeline`] — the end-to-end refinement pipeline (§III-B): classify
//!   free-text profile locations, keep GPS tweets, geocode both sides
//!   (optionally round-tripping through the mock Yahoo XML), build and
//!   group strings.
//! * [`funnel`] — the data-refinement funnel the paper reports (52k crawled
//!   → ~30k well defined → 1,1xx final users).
//! * [`stats`] — per-group statistics behind Figs. 6–7 and the slide
//!   charts: user counts, tweet counts, average distinct tweet districts.
//! * [`reliability`] — the paper's proposed application: a per-group weight
//!   factor for event-location estimation.
//! * [`bootstrap`] — resampled confidence intervals for the group
//!   statistics (error bars the paper does not report).
//! * [`report`] — plain-text tables/bar charts matching the figures;
//!   [`export`] — the same artifacts as CSV.
//!
//! Inputs are plain rows ([`ProfileRow`], [`TweetRow`]): the crate does not
//! depend on the simulator, so it drops onto real Twitter exports unchanged.

#![warn(missing_docs)]

pub mod bootstrap;
pub mod compare;
pub mod export;
pub mod funnel;
pub mod granularity;
pub mod grouping;
pub(crate) mod hash;
pub mod input;
pub mod intern;
pub mod metrics;
pub mod online;
pub mod pipeline;
pub mod regional;
pub mod reliability;
pub mod report;
pub mod service;
pub mod sketch;
pub mod stats;
pub mod string;
pub mod temporal;
pub mod topk;

pub use bootstrap::{avg_locations_cis, user_share_cis, Ci, GroupCis};
pub use compare::{compare, TableComparison};
pub use funnel::CollectionFunnel;
pub use granularity::Granularity;
pub use grouping::{
    group_cohort, group_cohort_with_block, group_user_keys, group_user_keys_with,
    group_user_strings, group_user_strings_with, GroupedUser, TieBreak,
};
pub use input::{ProfileRow, TweetRow};
pub use intern::{DistrictInterner, LocationKey};
pub use metrics::{
    ExecMetrics, ExecMode, GeocodeMetrics, GeocodeMode, GroupingMetrics, PipelineMetrics,
    SelectMetrics, StageTimings,
};
pub use online::OnlineGrouping;
pub use pipeline::exec::{warmup_collapse, ColumnBatch, MorselSource, RowSource, NO_GPS_E6};
pub use pipeline::{
    AnalysisResult, PipelineBuildError, PipelineBuilder, PipelineConfig, PipelineInput,
    RefinementPipeline, TimeWindow,
};
pub use reliability::ReliabilityWeights;
pub use service::{
    AnalysisSession, DurableSession, SessionQuery, SessionSnapshot, ShardedDurableSession,
    SnapshotError,
};
pub use sketch::{gazetteer_fingerprint, GazetteerSketcher};
pub use stats::{GroupRow, GroupTable};
pub use stir_geokr::{BackendChoice, BackendTraffic, FaultPlan, ResiliencePolicy};
pub use string::LocationString;
pub use topk::TopKGroup;
