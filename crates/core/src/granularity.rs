//! Grouping granularity — the paper's §III-B design choice, made
//! switchable for the ablation benchmark.
//!
//! "We simply group by the name of cities, but we divide the locations in
//! the metropolitan cities into the relatively small districts because
//! these cities are too large and the populations are extremely high."
//!
//! * [`Granularity::District`] — the paper's choice: county level
//!   everywhere, so metropolitan cities split into their gu.
//! * [`Granularity::City`] — the naive alternative the quote rejects: a
//!   metropolitan city is one unit (its gu collapse into the city), while
//!   provincial si/gun stay as they are. Matching becomes much easier in
//!   metros, inflating Top-1 — the ablation quantifies by how much.

use stir_geokr::Province;

/// The spatial grain of the grouping method.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Granularity {
    /// County (si/gun/gu) everywhere — the paper's method.
    #[default]
    District,
    /// Whole metropolitan cities as single units.
    City,
}

impl Granularity {
    /// Maps a geocoded `(state, county)` pair to its grouping key.
    pub fn key(&self, state: &str, county: &str) -> (String, String) {
        match self {
            Granularity::District => (state.to_string(), county.to_string()),
            Granularity::City => {
                let metro = Province::ALL
                    .iter()
                    .any(|p| p.is_metropolitan() && p.name_en() == state);
                if metro {
                    (state.to_string(), state.to_string())
                } else {
                    (state.to_string(), county.to_string())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn district_grain_is_identity() {
        let g = Granularity::District;
        assert_eq!(
            g.key("Seoul", "Yangcheon-gu"),
            ("Seoul".into(), "Yangcheon-gu".into())
        );
        assert_eq!(
            g.key("Gyeonggi-do", "Uiwang-si"),
            ("Gyeonggi-do".into(), "Uiwang-si".into())
        );
    }

    #[test]
    fn city_grain_collapses_metros_only() {
        let g = Granularity::City;
        assert_eq!(
            g.key("Seoul", "Yangcheon-gu"),
            ("Seoul".into(), "Seoul".into())
        );
        assert_eq!(
            g.key("Busan", "Haeundae-gu"),
            ("Busan".into(), "Busan".into())
        );
        // Provinces keep their cities distinct.
        assert_eq!(
            g.key("Gyeonggi-do", "Uiwang-si"),
            ("Gyeonggi-do".into(), "Uiwang-si".into())
        );
        assert_eq!(
            g.key("Jeju-do", "Jeju-si"),
            ("Jeju-do".into(), "Jeju-si".into())
        );
    }

    #[test]
    fn default_is_the_papers_choice() {
        assert_eq!(Granularity::default(), Granularity::District);
    }
}
