//! Regional reliability breakdown.
//!
//! The paper derives one weight factor per Top-k group. A natural
//! refinement — and the obvious next question for the event-detection
//! systems it targets — is whether profile reliability varies by *where*
//! the profile points: metropolitan profiles name a gu among dozens, while
//! a provincial profile names a whole city. This module aggregates the
//! grouped cohort by the profile's first-level division.

use std::collections::HashMap;

use crate::grouping::GroupedUser;
use crate::topk::TopKGroup;

/// Reliability aggregates for one first-level division.
#[derive(Clone, Debug, PartialEq)]
pub struct RegionRow {
    /// The division (the grouped users' `state_profile`).
    pub state: String,
    /// Cohort members whose profile points here.
    pub users: u64,
    /// Mean fraction of tweets posted from the profile district.
    pub mean_matched_fraction: f64,
    /// Share of these users in the None group.
    pub none_share: f64,
    /// Share in Top-1.
    pub top1_share: f64,
}

/// Per-region reliability table, sorted by user count descending.
pub fn by_region(users: &[GroupedUser]) -> Vec<RegionRow> {
    #[derive(Default)]
    struct Acc {
        users: u64,
        matched_fraction_sum: f64,
        none: u64,
        top1: u64,
    }
    let mut acc: HashMap<&str, Acc> = HashMap::new();
    for u in users {
        let a = acc.entry(u.state_profile.as_str()).or_default();
        a.users += 1;
        a.matched_fraction_sum += u.matched_fraction();
        match u.group() {
            TopKGroup::None => a.none += 1,
            TopKGroup::Top1 => a.top1 += 1,
            _ => {}
        }
    }
    let mut rows: Vec<RegionRow> = acc
        .into_iter()
        .map(|(state, a)| RegionRow {
            state: state.to_string(),
            users: a.users,
            mean_matched_fraction: a.matched_fraction_sum / a.users as f64,
            none_share: a.none as f64 / a.users as f64,
            top1_share: a.top1 as f64 / a.users as f64,
        })
        .collect();
    rows.sort_by(|a, b| b.users.cmp(&a.users).then_with(|| a.state.cmp(&b.state)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::group_user_strings;
    use crate::string::LocationString;

    fn user(u: u64, state: &str, matched: usize, other: usize) -> GroupedUser {
        let mk = |county_t: &str, n: usize| {
            std::iter::repeat_with(move || LocationString {
                user: u,
                state_profile: state.to_string(),
                county_profile: "Home-gu".into(),
                state_tweet: state.to_string(),
                county_tweet: county_t.to_string(),
            })
            .take(n)
            .collect::<Vec<_>>()
        };
        let mut strings = mk("Home-gu", matched);
        strings.extend(mk("Other-gu", other));
        group_user_strings(&strings).unwrap()
    }

    #[test]
    fn aggregates_by_state() {
        let users = vec![
            user(1, "Seoul", 8, 2), // Top-1, fraction 0.8
            user(2, "Seoul", 0, 5), // None, fraction 0.0
            user(3, "Busan", 5, 5), // fraction 0.5 (tie: matched first-seen first → Top-1)
        ];
        let rows = by_region(&users);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].state, "Seoul");
        assert_eq!(rows[0].users, 2);
        assert!((rows[0].mean_matched_fraction - 0.4).abs() < 1e-12);
        assert!((rows[0].none_share - 0.5).abs() < 1e-12);
        assert!((rows[0].top1_share - 0.5).abs() < 1e-12);
        assert_eq!(rows[1].state, "Busan");
        assert!((rows[1].mean_matched_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sorted_by_users_then_name() {
        let users = vec![
            user(1, "Busan", 1, 0),
            user(2, "Seoul", 1, 0),
            user(3, "Seoul", 1, 0),
            user(4, "Daegu", 1, 0),
        ];
        let rows = by_region(&users);
        assert_eq!(rows[0].state, "Seoul");
        assert_eq!(rows[1].state, "Busan"); // tie with Daegu → alphabetical
        assert_eq!(rows[2].state, "Daegu");
    }

    #[test]
    fn empty_cohort() {
        assert!(by_region(&[]).is_empty());
    }
}
