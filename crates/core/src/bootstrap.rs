//! Bootstrap confidence intervals for the group statistics.
//!
//! The paper reports point percentages over a ~1,1xx-user cohort with no
//! uncertainty. Resampling users with replacement gives the missing error
//! bars — and tells a reader of the reproduction which digits of Fig. 6/7
//! are meaningful at a given cohort size.
//!
//! Uses an internal xorshift generator so the crate keeps its zero-runtime-
//! dependency policy; results are deterministic in the seed.

use crate::grouping::GroupedUser;
use crate::stats::GroupTable;
use crate::topk::TopKGroup;

/// A percentile bootstrap interval around a point estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ci {
    /// The statistic on the full cohort.
    pub point: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Ci {
    /// True when `v` lies inside the interval.
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo && v <= self.hi
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Per-group intervals for one statistic, in [`TopKGroup::ALL`] order.
#[derive(Clone, Copy, Debug)]
pub struct GroupCis {
    /// The intervals.
    pub by_group: [Ci; 7],
}

impl GroupCis {
    /// The interval for a group.
    pub fn get(&self, group: TopKGroup) -> Ci {
        self.by_group[group.index()]
    }
}

struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Bootstraps a per-group statistic (chosen by `stat`) over `resamples`
/// resampled cohorts at the given two-sided `confidence` (e.g. 0.95).
fn bootstrap_stat<F: Fn(&GroupTable, TopKGroup) -> f64>(
    users: &[GroupedUser],
    resamples: usize,
    confidence: f64,
    seed: u64,
    stat: F,
) -> GroupCis {
    assert!(resamples > 0, "need at least one resample");
    assert!(
        (0.0..1.0).contains(&confidence),
        "confidence must be in (0,1)"
    );
    let point_table = GroupTable::compute(users);
    let mut rng = XorShift(seed | 1);
    let mut samples: Vec<[f64; 7]> = Vec::with_capacity(resamples);
    let mut resample: Vec<GroupedUser> = Vec::with_capacity(users.len());
    for _ in 0..resamples {
        resample.clear();
        for _ in 0..users.len() {
            resample.push(users[rng.below(users.len())].clone());
        }
        let table = GroupTable::compute(&resample);
        samples.push(std::array::from_fn(|i| stat(&table, TopKGroup::ALL[i])));
    }
    let alpha = (1.0 - confidence) / 2.0;
    let by_group = std::array::from_fn(|i| {
        let mut values: Vec<f64> = samples.iter().map(|s| s[i]).collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Ci {
            point: stat(&point_table, TopKGroup::ALL[i]),
            lo: percentile(&values, alpha),
            hi: percentile(&values, 1.0 - alpha),
        }
    });
    GroupCis { by_group }
}

/// Bootstrap CIs for the users-per-group percentages (Fig. 7).
pub fn user_share_cis(
    users: &[GroupedUser],
    resamples: usize,
    confidence: f64,
    seed: u64,
) -> GroupCis {
    bootstrap_stat(users, resamples, confidence, seed, |t, g| t.row(g).user_pct)
}

/// Bootstrap CIs for the average-distinct-districts statistic (Fig. 6).
pub fn avg_locations_cis(
    users: &[GroupedUser],
    resamples: usize,
    confidence: f64,
    seed: u64,
) -> GroupCis {
    bootstrap_stat(users, resamples, confidence, seed, |t, g| {
        t.row(g).avg_locations
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::group_user_strings;
    use crate::string::LocationString;

    fn cohort(n_top1: usize, n_none: usize) -> Vec<GroupedUser> {
        let mut out = Vec::new();
        for u in 0..n_top1 {
            out.push(
                group_user_strings(&[LocationString {
                    user: u as u64,
                    state_profile: "Seoul".into(),
                    county_profile: "Guro-gu".into(),
                    state_tweet: "Seoul".into(),
                    county_tweet: "Guro-gu".into(),
                }])
                .unwrap(),
            );
        }
        for u in 0..n_none {
            out.push(
                group_user_strings(&[LocationString {
                    user: (n_top1 + u) as u64,
                    state_profile: "Seoul".into(),
                    county_profile: "Guro-gu".into(),
                    state_tweet: "Seoul".into(),
                    county_tweet: "Mapo-gu".into(),
                }])
                .unwrap(),
            );
        }
        out
    }

    #[test]
    fn point_estimates_match_table() {
        let users = cohort(70, 30);
        let cis = user_share_cis(&users, 200, 0.95, 42);
        assert!((cis.get(TopKGroup::Top1).point - 70.0).abs() < 1e-9);
        assert!((cis.get(TopKGroup::None).point - 30.0).abs() < 1e-9);
    }

    #[test]
    fn intervals_cover_their_points() {
        let users = cohort(70, 30);
        let cis = user_share_cis(&users, 400, 0.95, 7);
        for g in TopKGroup::ALL {
            let ci = cis.get(g);
            assert!(ci.contains(ci.point), "{g}: {ci:?}");
            assert!(ci.lo <= ci.hi);
        }
    }

    #[test]
    fn larger_cohorts_give_tighter_intervals() {
        let small = user_share_cis(&cohort(35, 15), 400, 0.95, 1);
        let large = user_share_cis(&cohort(700, 300), 400, 0.95, 1);
        assert!(
            large.get(TopKGroup::Top1).width() < small.get(TopKGroup::Top1).width(),
            "large {:?} vs small {:?}",
            large.get(TopKGroup::Top1),
            small.get(TopKGroup::Top1)
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let users = cohort(60, 40);
        let a = user_share_cis(&users, 100, 0.9, 5);
        let b = user_share_cis(&users, 100, 0.9, 5);
        for g in TopKGroup::ALL {
            assert_eq!(a.get(g), b.get(g));
        }
    }

    #[test]
    fn avg_locations_cis_work() {
        let users = cohort(50, 50);
        let cis = avg_locations_cis(&users, 100, 0.95, 3);
        // Every user has exactly one district in this cohort.
        assert!((cis.get(TopKGroup::Top1).point - 1.0).abs() < 1e-9);
        assert!(cis.get(TopKGroup::Top1).width() < 1e-9);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&v, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&v, 1.0) - 4.0).abs() < 1e-12);
        assert!((percentile(&v, 0.5) - 2.5).abs() < 1e-12);
    }
}
