//! Incremental grouping.
//!
//! The batch method ([`crate::grouping`]) re-sorts a user's merged list
//! from scratch; a live deployment watching tweets arrive wants the Top-k
//! group maintained *per tweet*. [`OnlineGrouping`] keeps per-user merged
//! counts on interned [`DistrictId`]s — an update is one `u32` scan of the
//! user's small merged list, a count bump, and a re-sort of that list (its
//! length is the user's *distinct* district count, bounded by the
//! vocabulary) — and answers "which group is this user in right now?"
//! without touching the heap. Strings appear only at the [`snapshot`]
//! boundary, resolved through the engine's [`DistrictInterner`]. A
//! property test pins exact equivalence with the batch path under all four
//! [`TieBreak`] policies.
//!
//! [`snapshot`]: OnlineGrouping::snapshot

use std::collections::HashMap;

use crate::grouping::{materialize_user, merged_cmp, GroupedUser, MergedId, TieBreak};
use crate::intern::{DistrictId, DistrictInterner, LocationKey};
use crate::string::LocationString;
use crate::topk::TopKGroup;

/// One user's live grouping state: the profile district (fixed at first
/// sight) and the merged list, kept sorted under the engine's tie-break at
/// all times so rank queries are a scan, not a sort.
#[derive(Clone, Debug)]
struct UserState {
    profile: DistrictId,
    merged: Vec<MergedId>,
    /// Monotone first-seen counter (merged is sorted, so its length at
    /// insert time no longer encodes arrival order).
    next_seen: u32,
}

impl UserState {
    /// The rank of the matched district, or `None` if the user has never
    /// tweeted from the profile district. Allocation-free: an id compare
    /// over the already-sorted merged list.
    fn matched_rank(&self) -> Option<usize> {
        self.merged
            .iter()
            .position(|&(d, _, _)| d == self.profile)
            .map(|i| i + 1)
    }
}

/// Live per-user grouping over a stream of interned location keys.
///
/// ```
/// use stir_core::{OnlineGrouping, TopKGroup};
///
/// let mut live = OnlineGrouping::new();
/// let home = live.intern_district("Seoul", "Guro-gu");
/// let mapo = live.intern_district("Seoul", "Mapo-gu");
/// assert_eq!(live.push_key(live.key(1, home, mapo)), TopKGroup::None);
/// assert_eq!(live.push_key(live.key(1, home, home)), TopKGroup::Top2);
/// assert_eq!(live.push_key(live.key(1, home, home)), TopKGroup::Top1);
/// ```
#[derive(Debug, Default)]
pub struct OnlineGrouping {
    interner: DistrictInterner,
    users: HashMap<u64, UserState>,
    tie_break: TieBreak,
}

impl OnlineGrouping {
    /// An empty engine with its own interner and the default
    /// [`TieBreak::FirstSeen`] policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty engine with an explicit tie-break policy.
    pub fn with_tie_break(tie_break: TieBreak) -> Self {
        OnlineGrouping {
            tie_break,
            ..Self::default()
        }
    }

    /// An empty engine seeded with an existing symbol table, so
    /// [`LocationKey`]s interned elsewhere (e.g. by a pipeline) can be
    /// pushed directly.
    pub fn with_interner(interner: DistrictInterner, tie_break: TieBreak) -> Self {
        OnlineGrouping {
            interner,
            users: HashMap::new(),
            tie_break,
        }
    }

    /// Users seen so far.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// True when no keys have been ingested.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// The engine's symbol table (grows via [`intern_district`]).
    ///
    /// [`intern_district`]: OnlineGrouping::intern_district
    pub fn interner(&self) -> &DistrictInterner {
        &self.interner
    }

    /// Interns a `(state, county)` district into the engine's symbol
    /// table, returning its id for use in pushed keys.
    pub fn intern_district(&mut self, state: &str, county: &str) -> DistrictId {
        self.interner.intern(state, county)
    }

    /// Builds a key from ids interned through this engine — sugar for
    /// `LocationKey { user, profile, tweet }`.
    pub fn key(&self, user: u64, profile: DistrictId, tweet: DistrictId) -> LocationKey {
        LocationKey {
            user,
            profile,
            tweet,
        }
    }

    /// Ingests one interned location key and returns the author's group
    /// *after* this key. No heap traffic: one scan + bump + re-sort of the
    /// author's small merged list.
    pub fn push_key(&mut self, k: LocationKey) -> TopKGroup {
        let state = self.users.entry(k.user).or_insert_with(|| UserState {
            profile: k.profile,
            merged: Vec::new(),
            next_seen: 0,
        });
        debug_assert_eq!(state.profile, k.profile, "profile changed mid-stream");
        match state.merged.iter_mut().find(|(d, _, _)| *d == k.tweet) {
            Some(entry) => entry.1 += 1,
            None => {
                let seen = state.next_seen;
                state.next_seen += 1;
                state.merged.push((k.tweet, 1, seen));
            }
        }
        let (tie_break, profile) = (self.tie_break, state.profile);
        let interner = &self.interner;
        state
            .merged
            .sort_unstable_by(|a, b| merged_cmp(a, b, tie_break, profile, interner));
        TopKGroup::from_rank(state.matched_rank())
    }

    /// Ingests one string-shaped location record, interning at the
    /// boundary. Each call hashes four strings; hot paths should intern
    /// once and use [`push_key`].
    ///
    /// [`push_key`]: OnlineGrouping::push_key
    #[deprecated(note = "intern once and use `push_key` — this shim hashes four strings per call")]
    pub fn push(&mut self, s: &LocationString) -> TopKGroup {
        let profile = self.interner.intern(&s.state_profile, &s.county_profile);
        let tweet = self.interner.intern(&s.state_tweet, &s.county_tweet);
        self.push_key(LocationKey {
            user: s.user,
            profile,
            tweet,
        })
    }

    /// The current group of a user (`None` if never seen).
    pub fn group_of(&self, user: u64) -> Option<TopKGroup> {
        self.users
            .get(&user)
            .map(|s| TopKGroup::from_rank(s.matched_rank()))
    }

    /// Materializes the current state as batch-style [`GroupedUser`]s,
    /// in user-id order — identical to running the batch grouper over the
    /// same keys. This is the only place strings are built.
    pub fn snapshot(&self) -> Vec<GroupedUser> {
        let mut ids: Vec<u64> = self.users.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter()
            .map(|user| {
                let s = &self.users[&user];
                materialize_user(user, s.profile, &s.merged, &self.interner)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::group_user_strings;

    fn s(user: u64, ct: &str) -> LocationString {
        LocationString {
            user,
            state_profile: "Seoul".into(),
            county_profile: "Guro-gu".into(),
            state_tweet: "Seoul".into(),
            county_tweet: ct.into(),
        }
    }

    fn push_str(og: &mut OnlineGrouping, x: &LocationString) -> TopKGroup {
        #[allow(deprecated)] // exercising the shim is the point
        og.push(x)
    }

    #[test]
    fn group_updates_live() {
        let mut og = OnlineGrouping::new();
        // First tweet from elsewhere: None.
        assert_eq!(push_str(&mut og, &s(1, "Mapo-gu")), TopKGroup::None);
        // Then one from home: tie at 1–1, Mapo seen first → Top-2.
        assert_eq!(push_str(&mut og, &s(1, "Guro-gu")), TopKGroup::Top2);
        // Another from home: 2–1 → Top-1.
        assert_eq!(push_str(&mut og, &s(1, "Guro-gu")), TopKGroup::Top1);
        assert_eq!(og.group_of(1), Some(TopKGroup::Top1));
        assert_eq!(og.group_of(99), None);
    }

    #[test]
    fn keyed_push_matches_string_shim() {
        let stream = [
            s(1, "Mapo-gu"),
            s(2, "Guro-gu"),
            s(1, "Guro-gu"),
            s(1, "Mapo-gu"),
            s(2, "Jung-gu"),
            s(1, "Jongno-gu"),
            s(2, "Guro-gu"),
        ];
        let mut shimmed = OnlineGrouping::new();
        let mut keyed = OnlineGrouping::new();
        for x in &stream {
            let a = push_str(&mut shimmed, x);
            let profile = keyed.intern_district(&x.state_profile, &x.county_profile);
            let tweet = keyed.intern_district(&x.state_tweet, &x.county_tweet);
            let b = keyed.push_key(keyed.key(x.user, profile, tweet));
            assert_eq!(a, b);
        }
        assert_eq!(shimmed.snapshot(), keyed.snapshot());
    }

    #[test]
    fn snapshot_equals_batch() {
        let stream = [
            s(1, "Mapo-gu"),
            s(2, "Guro-gu"),
            s(1, "Guro-gu"),
            s(1, "Mapo-gu"),
            s(2, "Jung-gu"),
            s(1, "Jongno-gu"),
            s(2, "Guro-gu"),
        ];
        let mut og = OnlineGrouping::new();
        for x in &stream {
            push_str(&mut og, x);
        }
        let online = og.snapshot();
        for gu in &online {
            let user_strings: Vec<LocationString> = stream
                .iter()
                .filter(|x| x.user == gu.user)
                .cloned()
                .collect();
            let batch = group_user_strings(&user_strings).unwrap();
            assert_eq!(gu.matched_rank, batch.matched_rank, "user {}", gu.user);
            assert_eq!(gu.entries, batch.entries, "user {}", gu.user);
        }
    }

    #[test]
    fn empty_engine() {
        let og = OnlineGrouping::new();
        assert!(og.is_empty());
        assert!(og.snapshot().is_empty());
    }
}
