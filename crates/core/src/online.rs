//! Incremental grouping.
//!
//! The batch method ([`crate::grouping`]) re-sorts a user's merged list
//! from scratch; a live deployment watching tweets arrive wants the Top-k
//! group maintained *per string*. [`OnlineGrouping`] keeps per-user merged
//! counts with first-seen tie-breaking and answers "which group is this
//! user in right now?" in O(log d) per update (d = distinct districts).
//! A property test pins exact equivalence with the batch path.

use std::collections::HashMap;

use crate::grouping::{GroupedUser, MergedEntry};
use crate::string::LocationString;
use crate::topk::TopKGroup;

/// One user's live grouping state.
#[derive(Clone, Debug, Default)]
struct UserState {
    /// Profile side (fixed after the first string).
    state_profile: String,
    county_profile: String,
    /// (state, county) → (count, first-seen sequence).
    counts: HashMap<(String, String), (u64, u64)>,
    /// Monotone sequence for first-seen tie-breaking.
    next_seq: u64,
    total: u64,
}

impl UserState {
    /// The rank of the matched key under (count desc, first-seen asc), or
    /// `None` if the user has never tweeted from the profile district.
    fn matched_rank(&self) -> Option<usize> {
        let key = (self.state_profile.clone(), self.county_profile.clone());
        let &(mcount, mseq) = self.counts.get(&key)?;
        let ahead = self
            .counts
            .values()
            .filter(|&&(c, s)| c > mcount || (c == mcount && s < mseq))
            .count();
        Some(ahead + 1)
    }
}

/// Live per-user grouping over a stream of location strings.
///
/// ```
/// use stir_core::{LocationString, OnlineGrouping, TopKGroup};
///
/// let s = |county: &str| LocationString {
///     user: 1,
///     state_profile: "Seoul".into(),
///     county_profile: "Guro-gu".into(),
///     state_tweet: "Seoul".into(),
///     county_tweet: county.into(),
/// };
/// let mut live = OnlineGrouping::new();
/// assert_eq!(live.push(&s("Mapo-gu")), TopKGroup::None);
/// assert_eq!(live.push(&s("Guro-gu")), TopKGroup::Top2);
/// assert_eq!(live.push(&s("Guro-gu")), TopKGroup::Top1);
/// ```
#[derive(Debug, Default)]
pub struct OnlineGrouping {
    users: HashMap<u64, UserState>,
}

impl OnlineGrouping {
    /// An empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Users seen so far.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// True when no strings have been ingested.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Ingests one location string and returns the author's group *after*
    /// this string.
    pub fn push(&mut self, s: &LocationString) -> TopKGroup {
        let state = self.users.entry(s.user).or_default();
        if state.total == 0 {
            state.state_profile = s.state_profile.clone();
            state.county_profile = s.county_profile.clone();
        } else {
            debug_assert_eq!(
                state.state_profile, s.state_profile,
                "profile changed mid-stream"
            );
            debug_assert_eq!(state.county_profile, s.county_profile);
        }
        let seq = state.next_seq;
        let entry = state
            .counts
            .entry((s.state_tweet.clone(), s.county_tweet.clone()))
            .or_insert((0, seq));
        if entry.0 == 0 {
            state.next_seq += 1;
        }
        entry.0 += 1;
        state.total += 1;
        TopKGroup::from_rank(state.matched_rank())
    }

    /// The current group of a user (`None` if never seen).
    pub fn group_of(&self, user: u64) -> Option<TopKGroup> {
        self.users
            .get(&user)
            .map(|s| TopKGroup::from_rank(s.matched_rank()))
    }

    /// Materializes the current state as batch-style [`GroupedUser`]s,
    /// in user-id order — identical to running the batch grouper over the
    /// same strings.
    pub fn snapshot(&self) -> Vec<GroupedUser> {
        let mut ids: Vec<u64> = self.users.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter()
            .map(|user| {
                let s = &self.users[&user];
                type Keyed<'a> = Vec<(&'a (String, String), &'a (u64, u64))>;
                let mut keyed: Keyed<'_> = s.counts.iter().collect();
                keyed.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then_with(|| a.1 .1.cmp(&b.1 .1)));
                let mut matched_rank = None;
                let entries = keyed
                    .into_iter()
                    .enumerate()
                    .map(|(i, (key, &(count, _)))| {
                        let matched = key.0 == s.state_profile && key.1 == s.county_profile;
                        if matched {
                            matched_rank = Some(i + 1);
                        }
                        MergedEntry {
                            state: key.0.clone(),
                            county: key.1.clone(),
                            count,
                            matched,
                        }
                    })
                    .collect();
                GroupedUser {
                    user,
                    state_profile: s.state_profile.clone(),
                    county_profile: s.county_profile.clone(),
                    entries,
                    matched_rank,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::group_user_strings;

    fn s(user: u64, ct: &str) -> LocationString {
        LocationString {
            user,
            state_profile: "Seoul".into(),
            county_profile: "Guro-gu".into(),
            state_tweet: "Seoul".into(),
            county_tweet: ct.into(),
        }
    }

    #[test]
    fn group_updates_live() {
        let mut og = OnlineGrouping::new();
        // First tweet from elsewhere: None.
        assert_eq!(og.push(&s(1, "Mapo-gu")), TopKGroup::None);
        // Then one from home: tie at 1–1, Mapo seen first → Top-2.
        assert_eq!(og.push(&s(1, "Guro-gu")), TopKGroup::Top2);
        // Another from home: 2–1 → Top-1.
        assert_eq!(og.push(&s(1, "Guro-gu")), TopKGroup::Top1);
        assert_eq!(og.group_of(1), Some(TopKGroup::Top1));
        assert_eq!(og.group_of(99), None);
    }

    #[test]
    fn snapshot_equals_batch() {
        let stream = [
            s(1, "Mapo-gu"),
            s(2, "Guro-gu"),
            s(1, "Guro-gu"),
            s(1, "Mapo-gu"),
            s(2, "Jung-gu"),
            s(1, "Jongno-gu"),
            s(2, "Guro-gu"),
        ];
        let mut og = OnlineGrouping::new();
        for x in &stream {
            og.push(x);
        }
        let online = og.snapshot();
        for gu in &online {
            let user_strings: Vec<LocationString> = stream
                .iter()
                .filter(|x| x.user == gu.user)
                .cloned()
                .collect();
            let batch = group_user_strings(&user_strings).unwrap();
            assert_eq!(gu.matched_rank, batch.matched_rank, "user {}", gu.user);
            assert_eq!(gu.entries, batch.entries, "user {}", gu.user);
        }
    }

    #[test]
    fn empty_engine() {
        let og = OnlineGrouping::new();
        assert!(og.is_empty());
        assert!(og.snapshot().is_empty());
    }
}
