//! The data-refinement funnel (§III-B).
//!
//! The paper reports each shrinking stage: >52k crawled users → ~30k with
//! well-defined profile locations (vague/insufficient/ambiguous removed) →
//! 11.1M tweets of which only 2xx,xxx carry GPS → 1,1xx users left with
//! both. This struct carries the same accounting for any run.

/// Stage-by-stage counts of the refinement pipeline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CollectionFunnel {
    /// Users collected (crawled or sampled).
    pub users_collected: u64,
    /// Users whose profile resolved to exactly one district.
    pub users_well_defined: u64,
    /// Users removed: vague text ("my home").
    pub users_vague: u64,
    /// Users removed: insufficient grain ("Earth", "Korea", "Seoul").
    pub users_insufficient: u64,
    /// Users removed: ambiguous / multiple locations.
    pub users_ambiguous: u64,
    /// Users removed: foreign locations.
    pub users_foreign: u64,
    /// Users removed: empty profile location.
    pub users_empty: u64,
    /// Users whose profile carried literal GPS coordinates (kept; counted
    /// inside `users_well_defined` as well).
    pub users_profile_coordinates: u64,
    /// Total tweets examined.
    pub tweets_total: u64,
    /// Tweets carrying GPS coordinates.
    pub tweets_with_gps: u64,
    /// GPS tweets whose coordinates fell outside geocoder coverage.
    pub tweets_gps_unresolvable: u64,
    /// GPS tweets that belonged to well-defined users and geocoded — the
    /// strings that enter the grouping step.
    pub strings_built: u64,
    /// Final cohort: well-defined users with ≥ 1 geocoded GPS tweet.
    pub users_final: u64,
    /// Simulated days the geocoding stage needed under the Yahoo free-tier
    /// daily quota (0 when the direct geocoder was used).
    pub yahoo_quota_days: u64,
}

impl CollectionFunnel {
    /// Fraction of collected users whose profiles were well defined.
    pub fn well_defined_rate(&self) -> f64 {
        ratio(self.users_well_defined, self.users_collected)
    }

    /// Fraction of tweets that carried GPS.
    pub fn gps_rate(&self) -> f64 {
        ratio(self.tweets_with_gps, self.tweets_total)
    }

    /// Fraction of collected users that survived to the final cohort.
    pub fn survival_rate(&self) -> f64 {
        ratio(self.users_final, self.users_collected)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let f = CollectionFunnel {
            users_collected: 52_000,
            users_well_defined: 30_000,
            tweets_total: 11_000_000,
            tweets_with_gps: 220_000,
            users_final: 1_100,
            ..Default::default()
        };
        assert!((f.well_defined_rate() - 30.0 / 52.0).abs() < 1e-12);
        assert!((f.gps_rate() - 0.02).abs() < 1e-12);
        assert!((f.survival_rate() - 1_100.0 / 52_000.0).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators_are_zero() {
        let f = CollectionFunnel::default();
        assert_eq!(f.well_defined_rate(), 0.0);
        assert_eq!(f.gps_rate(), 0.0);
        assert_eq!(f.survival_rate(), 0.0);
    }
}
