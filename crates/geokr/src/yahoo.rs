//! A mock of the Yahoo Open API reverse-geocoding endpoint the paper used
//! (§III-B, Fig. 5), including its XML response format and a parser for it.
//!
//! The paper reads the `<state>` and `<county>` elements out of a
//! `<location>` block. The mock renders exactly that shape, and the analysis
//! pipeline can be configured to round-trip every lookup through the XML
//! layer so the same serialize/parse path the authors exercised stays under
//! test. The endpoint also models the practical constraints of a 2011-era
//! free API tier: per-day quota and per-request latency accounting, plus —
//! through a seeded [`FaultPlan`] — the failure modes that dominated real
//! geocoding at scale: dropped requests, latency spikes, garbled XML and
//! spurious rate-limit responses.
//!
//! All accounting is atomic ([`AtomicU64`], the `ReverseStats` pattern), so
//! the endpoint is `Sync` and the multi-threaded geocode stage can drive the
//! XML path directly; the quota slot is acquired with a compare-and-swap, so
//! the daily limit is exact under any interleaving — never oversold by a
//! racing thread.

use std::sync::atomic::{AtomicU64, Ordering};

use stir_geoindex::Point;

use crate::error::GeocodeError;
use crate::gazetteer::Gazetteer;
use crate::location::LocationRecord;
use crate::reverse::ReverseGeocoder;
use crate::service::{Fault, FaultPlan};

/// The old name of [`GeocodeError`], kept so seed code compiles unchanged.
/// The variants it used (`QuotaExceeded`, `MalformedResponse`) still exist
/// under the same names.
#[deprecated(since = "0.1.0", note = "renamed to `stir_geokr::GeocodeError`")]
pub type YahooError = GeocodeError;

/// Simulated wait before a client gives up on a dropped request when no
/// explicit deadline is configured on the endpoint.
const DROP_WAIT_MS: u64 = 1_000;

/// Escapes the five XML special characters.
fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

fn xml_unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

/// Renders the Fig. 5 response for a resolved location.
pub fn render_response(query: Point, rec: Option<&LocationRecord>) -> String {
    let mut xml = String::with_capacity(512);
    xml.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    xml.push_str("<ResultSet version=\"1.0\">\n");
    let found = usize::from(rec.is_some());
    xml.push_str(&format!("  <Found>{found}</Found>\n"));
    xml.push_str("  <Result>\n");
    xml.push_str(&format!("    <latitude>{:.6}</latitude>\n", query.lat));
    xml.push_str(&format!("    <longitude>{:.6}</longitude>\n", query.lon));
    if let Some(rec) = rec {
        xml.push_str("    <location>\n");
        xml.push_str(&format!(
            "      <country>{}</country>\n",
            xml_escape(&rec.country)
        ));
        xml.push_str(&format!(
            "      <state>{}</state>\n",
            xml_escape(&rec.state)
        ));
        xml.push_str(&format!(
            "      <county>{}</county>\n",
            xml_escape(&rec.county)
        ));
        xml.push_str(&format!("      <town>{}</town>\n", xml_escape(&rec.town)));
        xml.push_str("    </location>\n");
    }
    xml.push_str("  </Result>\n");
    xml.push_str("</ResultSet>\n");
    xml
}

/// Extracts the text content of the first `<tag>…</tag>` in `xml`.
fn element_text<'a>(xml: &'a str, tag: &str) -> Option<&'a str> {
    let open = format!("<{tag}>");
    let close = format!("</{tag}>");
    let start = xml.find(&open)? + open.len();
    let end = xml[start..].find(&close)? + start;
    Some(&xml[start..end])
}

/// Parses a Fig. 5 response back into a [`LocationRecord`]. The XML does
/// not carry the district id, so `district` is `None` here;
/// [`YahooPlaceFinder::lookup`] reattaches it from the gazetteer's
/// `(state, county)` index after parsing. Returns `Ok(None)` for a
/// well-formed response with `<Found>0</Found>`.
pub fn parse_response(xml: &str) -> Result<Option<LocationRecord>, GeocodeError> {
    let found = element_text(xml, "Found").ok_or_else(|| GeocodeError::from("missing <Found>"))?;
    match found.trim() {
        "0" => Ok(None),
        "1" => {
            let location = element_text(xml, "location")
                .ok_or_else(|| GeocodeError::from("missing <location>"))?;
            let field = |tag: &str| -> Result<String, GeocodeError> {
                element_text(location, tag)
                    .map(|s| xml_unescape(s.trim()))
                    .ok_or_else(|| GeocodeError::from(format!("missing <{tag}>")))
            };
            Ok(Some(LocationRecord {
                country: field("country")?,
                state: field("state")?,
                county: field("county")?,
                town: field("town")?,
                district: None,
            }))
        }
        other => Err(GeocodeError::MalformedResponse(format!(
            "bad <Found> value {other:?}"
        ))),
    }
}

/// Deterministically garbles a well-formed response: the opening `<Found>`
/// tag is misspelled, so the parser fails with a missing-element error —
/// the shape a truncated or proxy-mangled 2011 response actually took.
fn garble(xml: &str) -> String {
    xml.replacen("<Found>", "<F0und>", 1)
}

/// The mock endpoint: quota-limited, latency-accounted reverse geocoding
/// that answers in the Fig. 5 XML format.
///
/// `Sync` by construction: every counter is an [`AtomicU64`], and the daily
/// quota slot is acquired by compare-and-swap, so concurrent callers can
/// never drive the accepted-request count past the limit (the regression
/// suite hammers this with 8 threads). An optional [`FaultPlan`] injects
/// deterministic drop/delay/malformed/quota faults by attempt index, and an
/// optional per-call deadline turns injected latency into
/// [`GeocodeError::Timeout`] — the endpoint is where latency is simulated,
/// so the deadline is enforced here on behalf of the resilient decorator
/// that configures it.
pub struct YahooPlaceFinder<'g> {
    geocoder: ReverseGeocoder<'g>,
    daily_quota: u64,
    latency_ms_per_request: u64,
    deadline_ms: Option<u64>,
    faults: Option<FaultPlan>,
    /// Accepted requests in the current simulated day.
    requests: AtomicU64,
    /// All `request_xml` calls ever — the fault-schedule index.
    attempts: AtomicU64,
    simulated_ms: AtomicU64,
    // Outcome counters for the service-layer traffic report.
    calls: AtomicU64,
    call_resolved: AtomicU64,
    call_misses: AtomicU64,
    call_errors: AtomicU64,
}

impl<'g> YahooPlaceFinder<'g> {
    /// An endpoint with the 2011-era free-tier defaults: 50,000 requests per
    /// day, ~120 ms per request.
    pub fn new(gazetteer: &'g Gazetteer) -> Self {
        Self::with_limits(gazetteer, 50_000, 120)
    }

    /// An endpoint with explicit quota/latency parameters.
    pub fn with_limits(gazetteer: &'g Gazetteer, daily_quota: u64, latency_ms: u64) -> Self {
        YahooPlaceFinder {
            geocoder: ReverseGeocoder::assemble(
                gazetteer,
                1 << 20,
                crate::reverse::default_shard_count(),
            ),
            daily_quota,
            latency_ms_per_request: latency_ms,
            deadline_ms: None,
            faults: None,
            requests: AtomicU64::new(0),
            attempts: AtomicU64::new(0),
            simulated_ms: AtomicU64::new(0),
            calls: AtomicU64::new(0),
            call_resolved: AtomicU64::new(0),
            call_misses: AtomicU64::new(0),
            call_errors: AtomicU64::new(0),
        }
    }

    /// Attaches a seeded fault schedule; requests are faulted by attempt
    /// index, so the schedule is deterministic for a given plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Sets a per-call deadline: any request whose simulated latency
    /// (including injected delay) exceeds it fails with
    /// [`GeocodeError::Timeout`] after burning exactly `deadline_ms` of
    /// simulated wall clock.
    pub fn with_deadline(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// Issues one reverse-geocoding request, returning the raw XML response.
    pub fn request_xml(&self, p: Point) -> Result<String, GeocodeError> {
        let idx = self.attempts.fetch_add(1, Ordering::Relaxed);
        let fault = self.faults.as_ref().and_then(|f| f.decide(idx));
        if fault == Some(Fault::QuotaExceeded) {
            // A spurious rate-limit burst: the request is refused before a
            // quota slot is consumed, exactly like a transient 403.
            return Err(GeocodeError::QuotaExceeded(self.daily_quota));
        }
        // Exact slot acquisition: the CAS either claims slot r < quota or
        // fails — two racing threads can never both take the last slot.
        if self
            .requests
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |r| {
                (r < self.daily_quota).then_some(r + 1)
            })
            .is_err()
        {
            return Err(GeocodeError::QuotaExceeded(self.daily_quota));
        }
        if fault == Some(Fault::Drop) {
            // The response never arrives; the client waits out its deadline
            // (or the default drop wait) and gives up.
            let waited = self.deadline_ms.unwrap_or(DROP_WAIT_MS);
            self.simulated_ms.fetch_add(waited, Ordering::Relaxed);
            return Err(GeocodeError::Timeout { waited_ms: waited });
        }
        let mut latency = self.latency_ms_per_request;
        if fault == Some(Fault::Delay) {
            latency += self.faults.as_ref().map_or(0, |f| f.delay_ms);
        }
        if let Some(deadline) = self.deadline_ms {
            if latency > deadline {
                self.simulated_ms.fetch_add(deadline, Ordering::Relaxed);
                return Err(GeocodeError::Timeout {
                    waited_ms: deadline,
                });
            }
        }
        self.simulated_ms.fetch_add(latency, Ordering::Relaxed);
        let rec = self.geocoder.lookup(p);
        let xml = render_response(p, rec.as_ref());
        if fault == Some(Fault::MalformedXml) {
            return Ok(garble(&xml));
        }
        Ok(xml)
    }

    /// Issues a request and parses the response — the full round trip the
    /// paper's pipeline performed per GPS tweet. The district id (which the
    /// XML cannot carry) is reattached from the gazetteer's unique
    /// `(state, county)` index, so records from this path are as complete
    /// as the local geocoder's.
    pub fn lookup(&self, p: Point) -> Result<Option<LocationRecord>, GeocodeError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        let out = self
            .request_xml(p)
            .and_then(|xml| parse_response(&xml))
            .map(|opt| {
                opt.map(|mut rec| {
                    rec.district = self
                        .geocoder
                        .gazetteer()
                        .find_district(&rec.state, &rec.county);
                    rec
                })
            });
        match &out {
            Ok(Some(_)) => self.call_resolved.fetch_add(1, Ordering::Relaxed),
            Ok(None) => self.call_misses.fetch_add(1, Ordering::Relaxed),
            Err(_) => {
                self.call_errors.fetch_add(1, Ordering::Relaxed);
                // Errors fold into misses so the traffic identity
                // `lookups == resolved + fallbacks + misses` holds for the
                // raw endpoint too (it has no fallback chain).
                self.call_misses.fetch_add(1, Ordering::Relaxed)
            }
        };
        out
    }

    /// Accepted requests in the current simulated day.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// All `request_xml` calls ever issued (the fault-schedule index),
    /// including refused and faulted ones.
    pub fn attempts(&self) -> u64 {
        self.attempts.load(Ordering::Relaxed)
    }

    /// The configured daily quota.
    pub fn daily_quota(&self) -> u64 {
        self.daily_quota
    }

    /// Lookup outcome counters: `(calls, resolved, misses, errors)`, where
    /// errored calls are counted under both `misses` and `errors`.
    pub(crate) fn call_outcomes(&self) -> (u64, u64, u64, u64) {
        (
            self.calls.load(Ordering::Relaxed),
            self.call_resolved.load(Ordering::Relaxed),
            self.call_misses.load(Ordering::Relaxed),
            self.call_errors.load(Ordering::Relaxed),
        )
    }

    /// Traffic counters of the geocoder behind the endpoint (the cache the
    /// paper's practitioners would have put in front of the quota).
    pub fn geocoder_stats(&self) -> crate::ReverseStats {
        self.geocoder.stats()
    }

    /// Total simulated wall-clock cost of the traffic, in milliseconds.
    pub fn simulated_ms(&self) -> u64 {
        self.simulated_ms.load(Ordering::Relaxed)
    }

    /// Resets the daily counter (a new simulated day).
    pub fn reset_quota(&self) {
        self.requests.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_xml_preserves_state_county() {
        let g = Gazetteer::load();
        let api = YahooPlaceFinder::new(&g);
        let p = Point::new(37.517, 127.047);
        let rec = api.lookup(p).unwrap().expect("gangnam resolves");
        assert_eq!(rec.state, "Seoul");
        assert_eq!(rec.county, "Gangnam-gu");
        assert_eq!(rec.country, "South Korea");
        // The XML drops the id; lookup() reattaches it from the gazetteer,
        // and it must agree with the direct resolution of the same point.
        assert_eq!(rec.district, g.resolve_point(p));
        assert!(rec.district.is_some());
    }

    #[test]
    fn response_shape_matches_fig5() {
        let g = Gazetteer::load();
        let api = YahooPlaceFinder::new(&g);
        let xml = api.request_xml(Point::new(37.517, 127.047)).unwrap();
        for tag in [
            "<ResultSet",
            "<Found>1</Found>",
            "<location>",
            "<country>",
            "<state>",
            "<county>",
            "<town>",
        ] {
            assert!(xml.contains(tag), "missing {tag} in:\n{xml}");
        }
    }

    #[test]
    fn not_found_renders_and_parses() {
        let g = Gazetteer::load();
        let api = YahooPlaceFinder::new(&g);
        let xml = api.request_xml(Point::new(35.68, 139.69)).unwrap();
        assert!(xml.contains("<Found>0</Found>"));
        assert_eq!(parse_response(&xml).unwrap(), None);
    }

    #[test]
    fn quota_is_enforced() {
        let g = Gazetteer::load();
        let api = YahooPlaceFinder::with_limits(&g, 3, 100);
        let p = Point::new(37.517, 127.047);
        for _ in 0..3 {
            assert!(api.lookup(p).is_ok());
        }
        assert_eq!(api.lookup(p), Err(GeocodeError::QuotaExceeded(3)));
        api.reset_quota();
        assert!(api.lookup(p).is_ok());
        assert_eq!(api.simulated_ms(), 400);
    }

    /// The deprecated alias still names the same enum, variants included.
    #[test]
    #[allow(deprecated)]
    fn yahoo_error_alias_still_compiles() {
        let g = Gazetteer::load();
        let api = YahooPlaceFinder::with_limits(&g, 0, 100);
        let e: YahooError = api.lookup(Point::new(37.517, 127.047)).unwrap_err();
        assert_eq!(e, YahooError::QuotaExceeded(0));
    }

    #[test]
    fn escaping_roundtrips() {
        let rec = LocationRecord {
            country: "A&B <Co>".into(),
            state: "\"S\"".into(),
            county: "C'ty".into(),
            town: "T".into(),
            district: None,
        };
        let xml = render_response(Point::new(37.0, 127.0), Some(&rec));
        let back = parse_response(&xml).unwrap().unwrap();
        assert_eq!(back.country, "A&B <Co>");
        assert_eq!(back.state, "\"S\"");
        assert_eq!(back.county, "C'ty");
    }

    #[test]
    fn malformed_responses_are_rejected() {
        assert!(parse_response("<nope/>").is_err());
        assert!(parse_response("<Found>1</Found>").is_err());
        assert!(parse_response("<Found>9</Found>").is_err());
    }

    #[test]
    fn drop_fault_times_out_and_burns_quota() {
        let g = Gazetteer::load();
        let plan = FaultPlan {
            drop_rate: 1.0,
            ..FaultPlan::default()
        };
        let api = YahooPlaceFinder::with_limits(&g, 10, 120).with_fault_plan(plan);
        let out = api.lookup(Point::new(37.517, 127.047));
        assert_eq!(
            out,
            Err(GeocodeError::Timeout {
                waited_ms: DROP_WAIT_MS
            })
        );
        // The request was issued before it vanished: the quota slot is gone
        // and the client's deadline wait is on the simulated clock.
        assert_eq!(api.requests(), 1);
        assert_eq!(api.simulated_ms(), DROP_WAIT_MS);
    }

    #[test]
    fn delay_fault_beyond_deadline_times_out() {
        let g = Gazetteer::load();
        let plan = FaultPlan {
            delay_rate: 1.0,
            delay_ms: 900,
            ..FaultPlan::default()
        };
        let api = YahooPlaceFinder::with_limits(&g, 10, 120)
            .with_fault_plan(plan)
            .with_deadline(500);
        // 120 ms base + 900 ms injected > 500 ms deadline → timeout after
        // exactly the deadline.
        assert_eq!(
            api.lookup(Point::new(37.517, 127.047)),
            Err(GeocodeError::Timeout { waited_ms: 500 })
        );
        assert_eq!(api.simulated_ms(), 500);
        // Without the fault the same request fits the deadline.
        let quiet = YahooPlaceFinder::with_limits(&g, 10, 120).with_deadline(500);
        assert!(quiet.lookup(Point::new(37.517, 127.047)).unwrap().is_some());
        assert_eq!(quiet.simulated_ms(), 120);
    }

    #[test]
    fn malformed_fault_garbles_the_response() {
        let g = Gazetteer::load();
        let plan = FaultPlan {
            malformed_rate: 1.0,
            ..FaultPlan::default()
        };
        let api = YahooPlaceFinder::with_limits(&g, 10, 0).with_fault_plan(plan);
        let xml = api.request_xml(Point::new(37.517, 127.047)).unwrap();
        assert!(!xml.contains("<Found>"));
        assert!(matches!(
            parse_response(&xml),
            Err(GeocodeError::MalformedResponse(_))
        ));
    }

    #[test]
    fn quota_fault_is_spurious_and_burns_nothing() {
        let g = Gazetteer::load();
        let plan = FaultPlan {
            quota_rate: 1.0,
            ..FaultPlan::default()
        };
        let api = YahooPlaceFinder::with_limits(&g, 10, 120).with_fault_plan(plan);
        assert_eq!(
            api.lookup(Point::new(37.517, 127.047)),
            Err(GeocodeError::QuotaExceeded(10))
        );
        assert_eq!(api.requests(), 0, "spurious 403 must not consume a slot");
        assert_eq!(api.simulated_ms(), 0);
    }

    #[test]
    fn fault_schedule_is_deterministic_per_plan() {
        let g = Gazetteer::load();
        let plan = FaultPlan {
            drop_rate: 0.3,
            seed: 42,
            ..FaultPlan::default()
        };
        let outcomes = |api: &YahooPlaceFinder| -> Vec<bool> {
            (0..100)
                .map(|_| api.lookup(Point::new(37.517, 127.047)).is_ok())
                .collect()
        };
        let a = YahooPlaceFinder::with_limits(&g, u64::MAX, 0).with_fault_plan(plan);
        let b = YahooPlaceFinder::with_limits(&g, u64::MAX, 0).with_fault_plan(plan);
        assert_eq!(outcomes(&a), outcomes(&b));
        let hits = outcomes(&a).iter().filter(|ok| !*ok).count();
        assert!(hits > 0, "a 30% schedule must fault somewhere in 100 calls");
    }
}
