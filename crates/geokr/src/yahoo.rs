//! A mock of the Yahoo Open API reverse-geocoding endpoint the paper used
//! (§III-B, Fig. 5), including its XML response format and a parser for it.
//!
//! The paper reads the `<state>` and `<county>` elements out of a
//! `<location>` block. The mock renders exactly that shape, and the analysis
//! pipeline can be configured to round-trip every lookup through the XML
//! layer so the same serialize/parse path the authors exercised stays under
//! test. The endpoint also models the practical constraints of a 2011-era
//! free API tier: per-day quota and per-request latency accounting.

use stir_geoindex::Point;

use crate::gazetteer::Gazetteer;
use crate::location::LocationRecord;
use crate::reverse::ReverseGeocoder;

/// Errors the mock endpoint can return.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum YahooError {
    /// Daily quota exhausted; carries the configured limit.
    QuotaExceeded(u64),
    /// The response XML was malformed (parser side).
    MalformedResponse(String),
}

impl std::fmt::Display for YahooError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            YahooError::QuotaExceeded(limit) => {
                write!(f, "daily quota of {limit} requests exceeded")
            }
            YahooError::MalformedResponse(msg) => write!(f, "malformed response: {msg}"),
        }
    }
}

impl std::error::Error for YahooError {}

/// Escapes the five XML special characters.
fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

fn xml_unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

/// Renders the Fig. 5 response for a resolved location.
pub fn render_response(query: Point, rec: Option<&LocationRecord>) -> String {
    let mut xml = String::with_capacity(512);
    xml.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    xml.push_str("<ResultSet version=\"1.0\">\n");
    let found = usize::from(rec.is_some());
    xml.push_str(&format!("  <Found>{found}</Found>\n"));
    xml.push_str("  <Result>\n");
    xml.push_str(&format!("    <latitude>{:.6}</latitude>\n", query.lat));
    xml.push_str(&format!("    <longitude>{:.6}</longitude>\n", query.lon));
    if let Some(rec) = rec {
        xml.push_str("    <location>\n");
        xml.push_str(&format!(
            "      <country>{}</country>\n",
            xml_escape(&rec.country)
        ));
        xml.push_str(&format!(
            "      <state>{}</state>\n",
            xml_escape(&rec.state)
        ));
        xml.push_str(&format!(
            "      <county>{}</county>\n",
            xml_escape(&rec.county)
        ));
        xml.push_str(&format!("      <town>{}</town>\n", xml_escape(&rec.town)));
        xml.push_str("    </location>\n");
    }
    xml.push_str("  </Result>\n");
    xml.push_str("</ResultSet>\n");
    xml
}

/// Extracts the text content of the first `<tag>…</tag>` in `xml`.
fn element_text<'a>(xml: &'a str, tag: &str) -> Option<&'a str> {
    let open = format!("<{tag}>");
    let close = format!("</{tag}>");
    let start = xml.find(&open)? + open.len();
    let end = xml[start..].find(&close)? + start;
    Some(&xml[start..end])
}

/// Parses a Fig. 5 response back into a [`LocationRecord`] (without the
/// district id, which the XML does not carry). Returns `Ok(None)` for a
/// well-formed response with `<Found>0</Found>`.
pub fn parse_response(xml: &str) -> Result<Option<LocationRecord>, YahooError> {
    let found = element_text(xml, "Found")
        .ok_or_else(|| YahooError::MalformedResponse("missing <Found>".into()))?;
    match found.trim() {
        "0" => Ok(None),
        "1" => {
            let location = element_text(xml, "location")
                .ok_or_else(|| YahooError::MalformedResponse("missing <location>".into()))?;
            let field = |tag: &str| -> Result<String, YahooError> {
                element_text(location, tag)
                    .map(|s| xml_unescape(s.trim()))
                    .ok_or_else(|| YahooError::MalformedResponse(format!("missing <{tag}>")))
            };
            Ok(Some(LocationRecord {
                country: field("country")?,
                state: field("state")?,
                county: field("county")?,
                town: field("town")?,
                district: None,
            }))
        }
        other => Err(YahooError::MalformedResponse(format!(
            "bad <Found> value {other:?}"
        ))),
    }
}

/// The mock endpoint: quota-limited, latency-accounted reverse geocoding
/// that answers in the Fig. 5 XML format.
pub struct YahooPlaceFinder<'g> {
    geocoder: ReverseGeocoder<'g>,
    daily_quota: u64,
    latency_ms_per_request: u64,
    requests: std::cell::Cell<u64>,
    simulated_ms: std::cell::Cell<u64>,
}

impl<'g> YahooPlaceFinder<'g> {
    /// An endpoint with the 2011-era free-tier defaults: 50,000 requests per
    /// day, ~120 ms per request.
    pub fn new(gazetteer: &'g Gazetteer) -> Self {
        Self::with_limits(gazetteer, 50_000, 120)
    }

    /// An endpoint with explicit quota/latency parameters.
    pub fn with_limits(gazetteer: &'g Gazetteer, daily_quota: u64, latency_ms: u64) -> Self {
        YahooPlaceFinder {
            geocoder: ReverseGeocoder::new(gazetteer),
            daily_quota,
            latency_ms_per_request: latency_ms,
            requests: std::cell::Cell::new(0),
            simulated_ms: std::cell::Cell::new(0),
        }
    }

    /// Issues one reverse-geocoding request, returning the raw XML response.
    pub fn request_xml(&self, p: Point) -> Result<String, YahooError> {
        if self.requests.get() >= self.daily_quota {
            return Err(YahooError::QuotaExceeded(self.daily_quota));
        }
        self.requests.set(self.requests.get() + 1);
        self.simulated_ms
            .set(self.simulated_ms.get() + self.latency_ms_per_request);
        let rec = self.geocoder.lookup(p);
        Ok(render_response(p, rec.as_ref()))
    }

    /// Issues a request and parses the response — the full round trip the
    /// paper's pipeline performed per GPS tweet.
    pub fn lookup(&self, p: Point) -> Result<Option<LocationRecord>, YahooError> {
        parse_response(&self.request_xml(p)?)
    }

    /// Requests issued so far.
    pub fn requests(&self) -> u64 {
        self.requests.get()
    }

    /// Traffic counters of the geocoder behind the endpoint (the cache the
    /// paper's practitioners would have put in front of the quota).
    pub fn geocoder_stats(&self) -> crate::ReverseStats {
        self.geocoder.stats()
    }

    /// Total simulated wall-clock cost of the traffic, in milliseconds.
    pub fn simulated_ms(&self) -> u64 {
        self.simulated_ms.get()
    }

    /// Resets the daily counter (a new simulated day).
    pub fn reset_quota(&self) {
        self.requests.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_xml_preserves_state_county() {
        let g = Gazetteer::load();
        let api = YahooPlaceFinder::new(&g);
        let p = Point::new(37.517, 127.047);
        let rec = api.lookup(p).unwrap().expect("gangnam resolves");
        assert_eq!(rec.state, "Seoul");
        assert_eq!(rec.county, "Gangnam-gu");
        assert_eq!(rec.country, "South Korea");
    }

    #[test]
    fn response_shape_matches_fig5() {
        let g = Gazetteer::load();
        let api = YahooPlaceFinder::new(&g);
        let xml = api.request_xml(Point::new(37.517, 127.047)).unwrap();
        for tag in [
            "<ResultSet",
            "<Found>1</Found>",
            "<location>",
            "<country>",
            "<state>",
            "<county>",
            "<town>",
        ] {
            assert!(xml.contains(tag), "missing {tag} in:\n{xml}");
        }
    }

    #[test]
    fn not_found_renders_and_parses() {
        let g = Gazetteer::load();
        let api = YahooPlaceFinder::new(&g);
        let xml = api.request_xml(Point::new(35.68, 139.69)).unwrap();
        assert!(xml.contains("<Found>0</Found>"));
        assert_eq!(parse_response(&xml).unwrap(), None);
    }

    #[test]
    fn quota_is_enforced() {
        let g = Gazetteer::load();
        let api = YahooPlaceFinder::with_limits(&g, 3, 100);
        let p = Point::new(37.517, 127.047);
        for _ in 0..3 {
            assert!(api.lookup(p).is_ok());
        }
        assert_eq!(api.lookup(p), Err(YahooError::QuotaExceeded(3)));
        api.reset_quota();
        assert!(api.lookup(p).is_ok());
        assert_eq!(api.simulated_ms(), 400);
    }

    #[test]
    fn escaping_roundtrips() {
        let rec = LocationRecord {
            country: "A&B <Co>".into(),
            state: "\"S\"".into(),
            county: "C'ty".into(),
            town: "T".into(),
            district: None,
        };
        let xml = render_response(Point::new(37.0, 127.0), Some(&rec));
        let back = parse_response(&xml).unwrap().unwrap();
        assert_eq!(back.country, "A&B <Co>");
        assert_eq!(back.state, "\"S\"");
        assert_eq!(back.county, "C'ty");
    }

    #[test]
    fn malformed_responses_are_rejected() {
        assert!(parse_response("<nope/>").is_err());
        assert!(parse_response("<Found>1</Found>").is_err());
        assert!(parse_response("<Found>9</Found>").is_err());
    }
}
