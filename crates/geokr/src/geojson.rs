//! GeoJSON export of the gazetteer.
//!
//! Dumps district footprints and centroids as a `FeatureCollection` so the
//! synthetic geography can be dropped into any map tool for inspection —
//! the fastest way to sanity-check the district table, footprint sizes and
//! a cohort's spatial distribution. Hand-rolled writer (four fixed shapes;
//! no serde).

use std::fmt::Write as _;

use crate::district::DistrictId;
use crate::gazetteer::Gazetteer;

/// JSON string escaping (quotes, backslashes, control characters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Optional per-district value attached to the features (e.g. cohort user
/// counts, reliability means) — rendered into a `value` property.
pub type DistrictValues<'a> = &'a dyn Fn(DistrictId) -> Option<f64>;

/// Renders the gazetteer as a GeoJSON `FeatureCollection` of polygon
/// features (one per district footprint). `values` may attach a numeric
/// `value` property per district.
pub fn districts_geojson(gazetteer: &Gazetteer, values: Option<DistrictValues<'_>>) -> String {
    let mut out = String::with_capacity(256 * 1024);
    out.push_str("{\"type\":\"FeatureCollection\",\"features\":[");
    for (i, d) in gazetteer.districts().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"type\":\"Feature\",\"properties\":{");
        let _ = write!(
            out,
            "\"name\":\"{}\",\"name_ko\":\"{}\",\"province\":\"{}\",\"population_k\":{},\"area_km2\":{}",
            json_escape(d.name_en),
            json_escape(d.name_ko),
            json_escape(d.province.name_en()),
            d.population_k,
            d.area_km2
        );
        if let Some(f) = values {
            if let Some(v) = f(d.id) {
                let _ = write!(out, ",\"value\":{v}");
            }
        }
        out.push_str("},\"geometry\":{\"type\":\"Polygon\",\"coordinates\":[[");
        let footprint = gazetteer.footprint(d.id);
        for (j, p) in footprint.vertices().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{:.6},{:.6}]", p.lon, p.lat);
        }
        // GeoJSON rings close explicitly.
        let first = footprint.vertices()[0];
        let _ = write!(out, ",[{:.6},{:.6}]", first.lon, first.lat);
        out.push_str("]]}}");
    }
    out.push_str("]}");
    out
}

/// Renders district centroids as a `FeatureCollection` of points.
pub fn centroids_geojson(gazetteer: &Gazetteer) -> String {
    let mut out = String::with_capacity(64 * 1024);
    out.push_str("{\"type\":\"FeatureCollection\",\"features\":[");
    for (i, d) in gazetteer.districts().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"type\":\"Feature\",\"properties\":{{\"name\":\"{}\"}},\"geometry\":{{\"type\":\"Point\",\"coordinates\":[{:.6},{:.6}]}}}}",
            json_escape(d.name_en),
            d.centroid.lon,
            d.centroid.lat
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny structural JSON validator: balanced braces/brackets outside
    /// strings, proper string termination. Not a full parser, but enough to
    /// catch every escaping/nesting mistake a writer can make.
    fn check_json_structure(s: &str) {
        let mut stack = Vec::new();
        let mut chars = s.chars();
        let mut in_string = false;
        while let Some(c) = chars.next() {
            if in_string {
                match c {
                    '\\' => {
                        chars.next();
                    }
                    '"' => in_string = false,
                    _ => {}
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '{' | '[' => stack.push(c),
                '}' => assert_eq!(stack.pop(), Some('{'), "unbalanced brace"),
                ']' => assert_eq!(stack.pop(), Some('['), "unbalanced bracket"),
                _ => {}
            }
        }
        assert!(!in_string, "unterminated string");
        assert!(stack.is_empty(), "unclosed {stack:?}");
    }

    #[test]
    fn districts_geojson_is_structurally_valid() {
        let g = Gazetteer::load();
        let json = districts_geojson(&g, None);
        check_json_structure(&json);
        assert!(json.starts_with("{\"type\":\"FeatureCollection\""));
        assert_eq!(json.matches("\"type\":\"Feature\"").count(), 229);
        assert!(json.contains("\"name\":\"Yangcheon-gu\""));
        assert!(json.contains("양천구"));
    }

    #[test]
    fn values_are_attached() {
        let g = Gazetteer::load();
        let f = |id: DistrictId| (id.0 == 0).then_some(42.5);
        let json = districts_geojson(&g, Some(&f));
        check_json_structure(&json);
        assert_eq!(json.matches("\"value\":42.5").count(), 1);
    }

    #[test]
    fn centroids_geojson_is_structurally_valid() {
        let g = Gazetteer::load();
        let json = centroids_geojson(&g);
        check_json_structure(&json);
        assert_eq!(json.matches("\"type\":\"Point\"").count(), 229);
    }

    #[test]
    fn rings_are_closed() {
        let g = Gazetteer::load();
        let json = districts_geojson(&g, None);
        // Every polygon ring must repeat its first coordinate at the end;
        // spot-check by structure: ring length = vertices + 1.
        let first = g.footprint(DistrictId(0));
        let expected_pairs = first.vertices().len() + 1;
        let head = &json[..json.find("]]}}").unwrap()];
        let ring = &head[head.rfind("[[").unwrap()..];
        assert_eq!(ring.matches("],[").count() + 1, expected_pairs);
    }

    #[test]
    fn escaping() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(json_escape("plain"), "plain");
    }
}
