//! The one error type every geocoding backend speaks.
//!
//! The paper's pipeline sat on a real 2011 free-tier API whose failure
//! surface was much wider than "quota" and "bad XML": requests vanished,
//! responses crawled in past any sane deadline, and client-side budgets ran
//! dry mid-experiment. [`GeocodeError`] absorbs the old `YahooError`
//! variants ([`QuotaExceeded`](GeocodeError::QuotaExceeded),
//! [`MalformedResponse`](GeocodeError::MalformedResponse)) and adds the
//! service-layer failure modes so every [`crate::service::Geocoder`]
//! backend — mock endpoint, resilient decorator, local gazetteer — returns
//! the same enum.

use std::fmt;

/// Everything that can go wrong between a GPS point and a
/// [`crate::LocationRecord`].
///
/// The variant split mirrors who refused the request:
///
/// * server side — [`QuotaExceeded`](Self::QuotaExceeded),
///   [`MalformedResponse`](Self::MalformedResponse),
///   [`Timeout`](Self::Timeout);
/// * client side — [`CircuitOpen`](Self::CircuitOpen),
///   [`QuotaExhausted`](Self::QuotaExhausted);
/// * nobody's fault — [`Unresolvable`](Self::Unresolvable).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GeocodeError {
    /// The endpoint's daily quota is spent; carries the configured limit.
    /// (Server-side 403; the old `YahooError::QuotaExceeded`.)
    QuotaExceeded(u64),
    /// The response XML could not be parsed (the old
    /// `YahooError::MalformedResponse`).
    MalformedResponse(String),
    /// No response arrived inside the per-call deadline; carries the
    /// simulated milliseconds the caller waited before giving up.
    Timeout {
        /// Simulated wait before the deadline fired, in milliseconds.
        waited_ms: u64,
    },
    /// The circuit breaker is open: the backend failed repeatedly and the
    /// service layer refuses to dial it until the cooldown elapses.
    CircuitOpen {
        /// Admissions left before the breaker half-opens for a probe.
        cooldown_left: u32,
    },
    /// The client-side daily budget is spent; the degraded-mode budgeter
    /// refused to issue the request at all. Carries the configured budget.
    QuotaExhausted(u64),
    /// Every backend in the fallback chain declined to answer.
    Unresolvable,
}

impl GeocodeError {
    /// Whether a bounded retry against the same backend can plausibly
    /// succeed. Timeouts, garbled responses and quota 403s are transient
    /// (the paper-era tier returned rate-limit bursts that cleared);
    /// breaker rejections and an exhausted client budget are not — the
    /// service layer falls straight back instead of burning attempts.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            GeocodeError::Timeout { .. }
                | GeocodeError::MalformedResponse(_)
                | GeocodeError::QuotaExceeded(_)
        )
    }
}

impl fmt::Display for GeocodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeocodeError::QuotaExceeded(limit) => {
                write!(f, "daily quota of {limit} requests exceeded")
            }
            GeocodeError::MalformedResponse(msg) => write!(f, "malformed response: {msg}"),
            GeocodeError::Timeout { waited_ms } => {
                write!(f, "no response within the {waited_ms} ms deadline")
            }
            GeocodeError::CircuitOpen { cooldown_left } => {
                write!(
                    f,
                    "circuit open ({cooldown_left} admissions until half-open probe)"
                )
            }
            GeocodeError::QuotaExhausted(budget) => {
                write!(f, "client-side daily budget of {budget} requests exhausted")
            }
            GeocodeError::Unresolvable => write!(f, "no backend could resolve the point"),
        }
    }
}

impl std::error::Error for GeocodeError {}

/// Parser shorthand: a bare message is a malformed response.
impl From<String> for GeocodeError {
    fn from(msg: String) -> Self {
        GeocodeError::MalformedResponse(msg)
    }
}

/// Parser shorthand: a bare message is a malformed response.
impl From<&str> for GeocodeError {
    fn from(msg: &str) -> Self {
        GeocodeError::MalformedResponse(msg.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_refusing_party() {
        assert!(GeocodeError::QuotaExceeded(50_000)
            .to_string()
            .contains("50000 requests"));
        assert!(GeocodeError::Timeout { waited_ms: 500 }
            .to_string()
            .contains("500 ms"));
        assert!(GeocodeError::CircuitOpen { cooldown_left: 3 }
            .to_string()
            .contains("circuit open"));
        assert!(GeocodeError::QuotaExhausted(100)
            .to_string()
            .contains("budget of 100"));
        assert_eq!(
            GeocodeError::from("missing <Found>"),
            GeocodeError::MalformedResponse("missing <Found>".into())
        );
    }

    #[test]
    fn retryability_split() {
        assert!(GeocodeError::Timeout { waited_ms: 1 }.retryable());
        assert!(GeocodeError::MalformedResponse("x".into()).retryable());
        assert!(GeocodeError::QuotaExceeded(1).retryable());
        assert!(!GeocodeError::CircuitOpen { cooldown_left: 1 }.retryable());
        assert!(!GeocodeError::QuotaExhausted(1).retryable());
        assert!(!GeocodeError::Unresolvable.retryable());
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(GeocodeError::Unresolvable);
        assert!(e.to_string().contains("no backend"));
    }
}
