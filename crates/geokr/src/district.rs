//! The gazetteer's data model: provinces (first-level divisions) and
//! districts (second-level divisions — si/gun/gu).

use std::fmt;

use stir_geoindex::Point;

/// Identifier of a district inside a [`crate::Gazetteer`]; stable for a given
/// gazetteer build (indices into the district table).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DistrictId(pub u16);

impl fmt::Display for DistrictId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{:03}", self.0)
    }
}

/// The sixteen first-level administrative divisions of South Korea as of the
/// paper's data period (2011): one special city, six metropolitan cities, and
/// nine provinces (including Jeju special self-governing province).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Province {
    /// Seoul Special City (서울특별시).
    Seoul,
    /// Busan Metropolitan City (부산광역시).
    Busan,
    /// Daegu Metropolitan City (대구광역시).
    Daegu,
    /// Incheon Metropolitan City (인천광역시).
    Incheon,
    /// Gwangju Metropolitan City (광주광역시).
    Gwangju,
    /// Daejeon Metropolitan City (대전광역시).
    Daejeon,
    /// Ulsan Metropolitan City (울산광역시).
    Ulsan,
    /// Gyeonggi Province (경기도).
    Gyeonggi,
    /// Gangwon Province (강원도).
    Gangwon,
    /// North Chungcheong Province (충청북도).
    Chungbuk,
    /// South Chungcheong Province (충청남도).
    Chungnam,
    /// North Jeolla Province (전라북도).
    Jeonbuk,
    /// South Jeolla Province (전라남도).
    Jeonnam,
    /// North Gyeongsang Province (경상북도).
    Gyeongbuk,
    /// South Gyeongsang Province (경상남도).
    Gyeongnam,
    /// Jeju Special Self-Governing Province (제주특별자치도).
    Jeju,
}

impl Province {
    /// All provinces, in official ordering.
    pub const ALL: [Province; 16] = [
        Province::Seoul,
        Province::Busan,
        Province::Daegu,
        Province::Incheon,
        Province::Gwangju,
        Province::Daejeon,
        Province::Ulsan,
        Province::Gyeonggi,
        Province::Gangwon,
        Province::Chungbuk,
        Province::Chungnam,
        Province::Jeonbuk,
        Province::Jeonnam,
        Province::Gyeongbuk,
        Province::Gyeongnam,
        Province::Jeju,
    ];

    /// Romanized name as the paper's strings use it (e.g. "Seoul",
    /// "Gyeonggi-do").
    pub fn name_en(self) -> &'static str {
        match self {
            Province::Seoul => "Seoul",
            Province::Busan => "Busan",
            Province::Daegu => "Daegu",
            Province::Incheon => "Incheon",
            Province::Gwangju => "Gwangju",
            Province::Daejeon => "Daejeon",
            Province::Ulsan => "Ulsan",
            Province::Gyeonggi => "Gyeonggi-do",
            Province::Gangwon => "Gangwon-do",
            Province::Chungbuk => "Chungcheongbuk-do",
            Province::Chungnam => "Chungcheongnam-do",
            Province::Jeonbuk => "Jeollabuk-do",
            Province::Jeonnam => "Jeollanam-do",
            Province::Gyeongbuk => "Gyeongsangbuk-do",
            Province::Gyeongnam => "Gyeongsangnam-do",
            Province::Jeju => "Jeju-do",
        }
    }

    /// Korean name.
    pub fn name_ko(self) -> &'static str {
        match self {
            Province::Seoul => "서울특별시",
            Province::Busan => "부산광역시",
            Province::Daegu => "대구광역시",
            Province::Incheon => "인천광역시",
            Province::Gwangju => "광주광역시",
            Province::Daejeon => "대전광역시",
            Province::Ulsan => "울산광역시",
            Province::Gyeonggi => "경기도",
            Province::Gangwon => "강원도",
            Province::Chungbuk => "충청북도",
            Province::Chungnam => "충청남도",
            Province::Jeonbuk => "전라북도",
            Province::Jeonnam => "전라남도",
            Province::Gyeongbuk => "경상북도",
            Province::Gyeongnam => "경상남도",
            Province::Jeju => "제주특별자치도",
        }
    }

    /// True for the special/metropolitan cities the paper singles out: "we
    /// divide the locations in the metropolitan cities into the relatively
    /// small districts because these cities are too large" (§III-B).
    pub fn is_metropolitan(self) -> bool {
        matches!(
            self,
            Province::Seoul
                | Province::Busan
                | Province::Daegu
                | Province::Incheon
                | Province::Gwangju
                | Province::Daejeon
                | Province::Ulsan
        )
    }
}

impl fmt::Display for Province {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name_en())
    }
}

/// The kind of a second-level division.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DistrictKind {
    /// Urban district of a special/metropolitan city (구).
    Gu,
    /// City (시).
    Si,
    /// County (군).
    Gun,
}

impl DistrictKind {
    /// The romanized suffix ("-gu", "-si", "-gun").
    pub fn suffix_en(self) -> &'static str {
        match self {
            DistrictKind::Gu => "-gu",
            DistrictKind::Si => "-si",
            DistrictKind::Gun => "-gun",
        }
    }

    /// The Korean suffix character.
    pub fn suffix_ko(self) -> char {
        match self {
            DistrictKind::Gu => '구',
            DistrictKind::Si => '시',
            DistrictKind::Gun => '군',
        }
    }
}

/// A second-level administrative district.
#[derive(Clone, Debug)]
pub struct District {
    /// Stable id within the gazetteer.
    pub id: DistrictId,
    /// Romanized name including the suffix, e.g. "Yangcheon-gu".
    pub name_en: &'static str,
    /// Korean name, e.g. "양천구".
    pub name_ko: &'static str,
    /// First-level division this district belongs to.
    pub province: Province,
    /// Si / gun / gu.
    pub kind: DistrictKind,
    /// Approximate centroid.
    pub centroid: Point,
    /// Approximate 2011 population in thousands; drives home-district
    /// sampling in the generator.
    pub population_k: u32,
    /// Approximate land area in km²; drives the synthetic footprint radius.
    pub area_km2: f64,
}

impl District {
    /// The radius (km) of the synthetic circular footprint with this
    /// district's area.
    pub fn footprint_radius_km(&self) -> f64 {
        (self.area_km2 / std::f64::consts::PI).sqrt()
    }

    /// The romanized name without its kind suffix ("Yangcheon" for
    /// "Yangcheon-gu").
    pub fn stem_en(&self) -> &str {
        self.name_en
            .strip_suffix(self.kind.suffix_en())
            .unwrap_or(self.name_en)
    }
}

impl fmt::Display for District {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.province.name_en(), self.name_en)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn province_names_roundtrip_through_all() {
        assert_eq!(Province::ALL.len(), 16);
        let mut seen = std::collections::HashSet::new();
        for p in Province::ALL {
            assert!(seen.insert(p.name_en()), "duplicate name {}", p.name_en());
            assert!(!p.name_ko().is_empty());
        }
    }

    #[test]
    fn metropolitan_flag_matches_2011_administration() {
        let metros: Vec<_> = Province::ALL
            .iter()
            .filter(|p| p.is_metropolitan())
            .collect();
        assert_eq!(metros.len(), 7); // Seoul + 6 metropolitan cities
        assert!(Province::Seoul.is_metropolitan());
        assert!(!Province::Gyeonggi.is_metropolitan());
        assert!(!Province::Jeju.is_metropolitan());
    }

    #[test]
    fn kind_suffixes() {
        assert_eq!(DistrictKind::Gu.suffix_en(), "-gu");
        assert_eq!(DistrictKind::Si.suffix_ko(), '시');
    }

    #[test]
    fn footprint_radius_matches_area() {
        let d = District {
            id: DistrictId(0),
            name_en: "Test-gu",
            name_ko: "테스트구",
            province: Province::Seoul,
            kind: DistrictKind::Gu,
            centroid: Point::new(37.5, 127.0),
            population_k: 100,
            area_km2: std::f64::consts::PI * 16.0,
        };
        assert!((d.footprint_radius_km() - 4.0).abs() < 1e-12);
        assert_eq!(d.stem_en(), "Test");
    }
}
