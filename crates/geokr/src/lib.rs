//! # stir-geokr — Korean administrative gazetteer and geocoders
//!
//! The paper resolves both profile locations and tweet GPS coordinates to
//! Korean administrative districts through the Yahoo Open API (its Fig. 5
//! shows the XML response). That service is long gone; this crate is the
//! closed-world replacement:
//!
//! * [`district`] / [`data`] — the gazetteer model and a 2011-era table of
//!   all 16 first-level divisions and 229 second-level districts (si/gun/gu),
//!   with romanized and Korean names, centroids, populations and areas.
//!   (Sejong City launched in July 2012, after the paper's collection
//!   window, and is deliberately absent.)
//! * [`Gazetteer`] — lookup by id/name/province, synthetic district
//!   footprints, population-weighted sampling support.
//! * [`ReverseGeocoder`] — GPS point → district, via an R-tree over district
//!   centroids with a polygon fast path and an LRU cache.
//! * [`ForwardGeocoder`] — normalized name → district, with ambiguity
//!   reporting (many district names repeat across provinces: every large
//!   city has a "Jung-gu").
//! * [`geojson`] — FeatureCollection export of footprints/centroids for
//!   visual inspection in any map tool.
//! * [`yahoo`] — a mock Yahoo PlaceFinder endpoint that renders and parses
//!   the paper's XML response format, so the analysis pipeline exercises the
//!   same serialize/parse path the authors did — now with a seeded
//!   [`FaultPlan`] injector for the failure modes of a 2011 free tier.
//! * [`service`] — the pluggable backend layer: the [`Geocoder`] trait, a
//!   [`GeocoderBuilder`], and the [`ResilientGeocoder`] decorator (deadline,
//!   bounded retry with decorrelated jitter, circuit breaker, client-side
//!   budget, stale-cache → gazetteer fallback), all deterministic.
//! * [`error`] — the unified [`GeocodeError`] every backend returns.
//!
//! The tweet generator samples GPS points from the same gazetteer the
//! analyzer geocodes with, mirroring how the paper used one geocoder on both
//! sides.

#![warn(missing_docs)]

pub mod data;
pub mod district;
pub mod error;
pub mod forward;
pub mod gazetteer;
pub mod geojson;
pub mod location;
pub mod reverse;
pub mod service;
pub mod yahoo;

pub use district::{District, DistrictId, DistrictKind, Province};
pub use error::GeocodeError;
pub use forward::{ForwardGeocoder, ForwardResult};
pub use gazetteer::Gazetteer;
pub use location::LocationRecord;
pub use reverse::{ReverseGeocoder, ReverseStats};
pub use service::{
    BackendChoice, BackendTraffic, FaultPlan, Geocoder, GeocoderBuilder, ResiliencePolicy,
    ResilientGeocoder,
};
