//! Forward geocoding: district *names* → districts.
//!
//! This layer is exact/alias lookup only; tokenization, vagueness
//! classification and fuzzy matching of raw profile text live in
//! `stir-textgeo`, which drives this resolver with cleaned-up candidates.

use std::collections::HashMap;

use crate::district::{DistrictId, Province};
use crate::gazetteer::Gazetteer;

/// Outcome of a forward lookup.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ForwardResult {
    /// Exactly one district matched.
    Unique(DistrictId),
    /// The name is valid but names several districts (e.g. "Jung-gu").
    /// Candidates are in gazetteer id order.
    Ambiguous(Vec<DistrictId>),
    /// Nothing matched.
    NotFound,
}

impl ForwardResult {
    /// The match when unique, else `None`.
    pub fn unique(&self) -> Option<DistrictId> {
        match self {
            ForwardResult::Unique(id) => Some(*id),
            _ => None,
        }
    }
}

/// A forward geocoder over a [`Gazetteer`] with province-name recognition
/// and a small built-in alias table for common romanization variants.
pub struct ForwardGeocoder<'g> {
    gazetteer: &'g Gazetteer,
    /// lowercase province alias → province
    province_aliases: HashMap<String, Province>,
    /// lowercase district alias → canonical romanized name (lowercase)
    district_aliases: HashMap<String, String>,
}

impl<'g> ForwardGeocoder<'g> {
    /// Builds the geocoder and its alias tables.
    pub fn new(gazetteer: &'g Gazetteer) -> Self {
        let mut province_aliases = HashMap::new();
        for p in Province::ALL {
            let en = p.name_en().to_ascii_lowercase();
            // Provinces are routinely written without the "-do" suffix
            // ("gangwon", "jeju"); index both forms.
            if let Some(stem) = en.strip_suffix("-do") {
                province_aliases.insert(stem.to_string(), p);
            }
            province_aliases.insert(en, p);
            province_aliases.insert(p.name_ko().to_string(), p);
        }
        // Common shorthand and legacy romanizations.
        let extra_provinces: [(&str, Province); 14] = [
            ("seoul city", Province::Seoul),
            ("서울", Province::Seoul),
            ("pusan", Province::Busan),
            ("부산", Province::Busan),
            ("대구", Province::Daegu),
            ("인천", Province::Incheon),
            ("taejon", Province::Daejeon),
            ("대전", Province::Daejeon),
            ("울산", Province::Ulsan),
            ("kyunggi", Province::Gyeonggi),
            ("gyeonggi", Province::Gyeonggi),
            ("경기", Province::Gyeonggi),
            ("kangwon", Province::Gangwon),
            ("jeju", Province::Jeju),
        ];
        for (alias, p) in extra_provinces {
            province_aliases.insert(alias.to_string(), p);
        }

        let mut district_aliases = HashMap::new();
        // The paper itself romanizes 양천구 as "Yangchun-gu".
        let extra_districts: [(&str, &str); 8] = [
            ("yangchun-gu", "yangcheon-gu"),
            ("kangnam-gu", "gangnam-gu"),
            ("kangnam", "gangnam-gu"),
            ("songpa", "songpa-gu"),
            ("hongdae", "mapo-gu"),
            ("gangnam", "gangnam-gu"),
            ("suwon", "suwon-si"),
            ("bucheon", "bucheon-si"),
        ];
        for (alias, canonical) in extra_districts {
            district_aliases.insert(alias.to_string(), canonical.to_string());
        }
        ForwardGeocoder {
            gazetteer,
            province_aliases,
            district_aliases,
        }
    }

    /// Recognizes a first-level division name/alias (romanized or Korean).
    pub fn resolve_province(&self, name: &str) -> Option<Province> {
        let key = name.trim().to_ascii_lowercase();
        self.province_aliases.get(&key).copied()
    }

    /// Resolves a district name, optionally scoped to a province.
    ///
    /// The name may be romanized (with or without a recognized alias) or
    /// Korean. With a province scope, ambiguous names collapse to the match
    /// inside that province when one exists.
    pub fn resolve_district(&self, name: &str, scope: Option<Province>) -> ForwardResult {
        let trimmed = name.trim();
        let key = trimmed.to_ascii_lowercase();
        let canonical = self
            .district_aliases
            .get(&key)
            .map(|s| s.as_str())
            .unwrap_or(&key);

        let mut hits: Vec<DistrictId> = self.gazetteer.find_by_name_en(canonical).to_vec();
        if hits.is_empty() {
            hits = self.gazetteer.find_by_name_ko(trimmed).to_vec();
        }
        if hits.is_empty() {
            return ForwardResult::NotFound;
        }
        if let Some(p) = scope {
            let scoped: Vec<DistrictId> = hits
                .iter()
                .copied()
                .filter(|&id| self.gazetteer.district(id).province == p)
                .collect();
            if scoped.len() == 1 {
                return ForwardResult::Unique(scoped[0]);
            }
            if !scoped.is_empty() {
                return ForwardResult::Ambiguous(scoped);
            }
            // A scope that excludes every candidate means the pair was
            // inconsistent ("Busan Yangcheon-gu"); report not found.
            return ForwardResult::NotFound;
        }
        if hits.len() == 1 {
            ForwardResult::Unique(hits[0])
        } else {
            ForwardResult::Ambiguous(hits)
        }
    }

    /// The underlying gazetteer.
    pub fn gazetteer(&self) -> &'g Gazetteer {
        self.gazetteer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (&'static Gazetteer, ForwardGeocoder<'static>) {
        let g: &'static Gazetteer = Box::leak(Box::new(Gazetteer::load()));
        let f = ForwardGeocoder::new(g);
        (g, f)
    }

    #[test]
    fn unique_names_resolve_unscoped() {
        let (g, f) = setup();
        let r = f.resolve_district("Yangcheon-gu", None);
        let id = r.unique().expect("unique");
        assert_eq!(g.district(id).province, Province::Seoul);
    }

    #[test]
    fn paper_romanization_alias_resolves() {
        let (g, f) = setup();
        // "Yangchun-gu" is the paper's own spelling of 양천구.
        let id = f
            .resolve_district("Yangchun-gu", None)
            .unique()
            .expect("alias hit");
        assert_eq!(g.district(id).name_en, "Yangcheon-gu");
    }

    #[test]
    fn ambiguous_name_needs_scope() {
        let (g, f) = setup();
        match f.resolve_district("Jung-gu", None) {
            ForwardResult::Ambiguous(hits) => assert_eq!(hits.len(), 6),
            other => panic!("expected ambiguous, got {other:?}"),
        }
        let id = f
            .resolve_district("Jung-gu", Some(Province::Busan))
            .unique()
            .expect("scoped");
        assert_eq!(g.district(id).province, Province::Busan);
    }

    #[test]
    fn inconsistent_scope_is_not_found() {
        let (_, f) = setup();
        assert_eq!(
            f.resolve_district("Yangcheon-gu", Some(Province::Busan)),
            ForwardResult::NotFound
        );
    }

    #[test]
    fn korean_names_resolve() {
        let (g, f) = setup();
        let id = f.resolve_district("강남구", None).unique().expect("korean");
        assert_eq!(g.district(id).name_en, "Gangnam-gu");
        assert_eq!(f.resolve_province("서울특별시"), Some(Province::Seoul));
        assert_eq!(f.resolve_province("경기도"), Some(Province::Gyeonggi));
    }

    #[test]
    fn province_aliases_resolve() {
        let (_, f) = setup();
        assert_eq!(f.resolve_province("seoul"), Some(Province::Seoul));
        assert_eq!(f.resolve_province("Pusan"), Some(Province::Busan));
        assert_eq!(f.resolve_province("GYEONGGI-DO"), Some(Province::Gyeonggi));
        assert_eq!(f.resolve_province("narnia"), None);
    }

    #[test]
    fn unknown_district_not_found() {
        let (_, f) = setup();
        assert_eq!(
            f.resolve_district("Gotham-gu", None),
            ForwardResult::NotFound
        );
    }
}
