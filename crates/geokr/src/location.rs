//! The geocoder's output record, mirroring the four elements the paper reads
//! from the Yahoo API response: `<country>`, `<state>`, `<county>`,
//! `<town>` (Fig. 5).

use std::fmt;

use crate::district::{DistrictId, Province};

/// A resolved administrative location.
///
/// `state` and `county` are the two elements the paper's grouping method
/// consumes; `town` is carried for fidelity with the Yahoo response but
/// never used by the analysis.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct LocationRecord {
    /// Country name; always "South Korea" for gazetteer hits.
    pub country: String,
    /// First-level division (romanized), e.g. "Seoul", "Gyeonggi-do".
    pub state: String,
    /// Second-level division (romanized), e.g. "Yangcheon-gu".
    pub county: String,
    /// Third-level neighbourhood; synthesized, informational only.
    pub town: String,
    /// The gazetteer district this record resolved to, when known.
    pub district: Option<DistrictId>,
}

impl LocationRecord {
    /// Builds a record for a gazetteer district.
    pub fn for_district(province: Province, county: &str, town: String, id: DistrictId) -> Self {
        LocationRecord {
            country: "South Korea".to_string(),
            state: province.name_en().to_string(),
            county: county.to_string(),
            town,
            district: Some(id),
        }
    }

    /// The `(state, county)` pair used by the text-based grouping method.
    pub fn state_county(&self) -> (&str, &str) {
        (&self.state, &self.county)
    }
}

impl fmt::Display for LocationRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.state, self.county)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_delimiter() {
        let r = LocationRecord::for_district(
            Province::Seoul,
            "Yangcheon-gu",
            "Mok-dong".into(),
            DistrictId(14),
        );
        assert_eq!(r.to_string(), "Seoul#Yangcheon-gu");
        assert_eq!(r.state_county(), ("Seoul", "Yangcheon-gu"));
        assert_eq!(r.country, "South Korea");
    }
}
