//! A three-state circuit breaker (closed → open → half-open).
//!
//! When the primary backend fails repeatedly, continuing to dial it just
//! burns quota, budget and simulated latency. The breaker trips after a
//! run of consecutive failures, refuses admissions while open, and after a
//! cooldown lets exactly one probe through (half-open): a successful probe
//! closes the circuit, a failed one re-opens it.
//!
//! The cooldown is counted in **refused admissions**, not wall-clock time.
//! The whole service layer simulates time (no real sleeps), and an
//! admission-count cooldown makes breaker behavior a pure function of the
//! call/outcome sequence — which the proptests pin down: the same seeded
//! fault schedule must always produce the same transition trace.

/// The breaker's admission policy state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: all calls admitted.
    Closed,
    /// Tripped: calls refused until the cooldown elapses.
    Open,
    /// Cooldown over: one probe admitted to test the backend.
    HalfOpen,
}

/// A deterministic three-state circuit breaker.
///
/// Not thread-safe by itself — the service layer wraps it in a mutex, and
/// every admission/outcome is recorded under that lock, so the transition
/// trace is a total order even under concurrent callers.
#[derive(Debug)]
pub struct CircuitBreaker {
    state: BreakerState,
    /// Consecutive failures while closed; resets on success.
    failures: u32,
    /// Trip after this many consecutive failures.
    threshold: u32,
    /// Refused admissions before half-opening.
    cooldown: u32,
    cooldown_left: u32,
    /// Admissions + refusals seen, the trace's time axis.
    events: u64,
    opens: u64,
    trace: Vec<(u64, BreakerState)>,
}

/// Transition traces are capped so a pathological schedule cannot grow one
/// without bound; 64 transitions is far beyond what any test inspects.
const TRACE_CAP: usize = 64;

impl CircuitBreaker {
    /// A breaker that trips after `threshold` consecutive failures and
    /// half-opens after `cooldown` refused admissions (both clamped ≥ 1).
    pub fn new(threshold: u32, cooldown: u32) -> Self {
        CircuitBreaker {
            state: BreakerState::Closed,
            failures: 0,
            threshold: threshold.max(1),
            cooldown: cooldown.max(1),
            cooldown_left: 0,
            events: 0,
            opens: 0,
            trace: Vec::new(),
        }
    }

    fn transition(&mut self, next: BreakerState) {
        self.state = next;
        if self.trace.len() < TRACE_CAP {
            self.trace.push((self.events, next));
        }
    }

    /// Asks to dial the backend. `Ok(())` admits the call; `Err(n)` refuses
    /// it with `n` refusals left before a probe is admitted.
    pub fn admit(&mut self) -> Result<(), u32> {
        self.events += 1;
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => Ok(()),
            BreakerState::Open => {
                self.cooldown_left = self.cooldown_left.saturating_sub(1);
                if self.cooldown_left == 0 {
                    // Next admission is the probe.
                    self.transition(BreakerState::HalfOpen);
                }
                Err(self.cooldown_left)
            }
        }
    }

    /// Reports a successful call: closes the circuit (from half-open) and
    /// clears the failure run.
    pub fn on_success(&mut self) {
        self.events += 1;
        self.failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.transition(BreakerState::Closed);
        }
    }

    /// Reports a failed call: trips the breaker after `threshold`
    /// consecutive failures, and re-opens immediately on a failed probe.
    pub fn on_failure(&mut self) {
        self.events += 1;
        match self.state {
            BreakerState::Closed => {
                self.failures += 1;
                if self.failures >= self.threshold {
                    self.opens += 1;
                    self.cooldown_left = self.cooldown;
                    self.transition(BreakerState::Open);
                }
            }
            BreakerState::HalfOpen => {
                self.failures = self.threshold;
                self.opens += 1;
                self.cooldown_left = self.cooldown;
                self.transition(BreakerState::Open);
            }
            BreakerState::Open => {}
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Closed→open transitions so far (including half-open→open re-trips).
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// The transition trace: `(event index, new state)` pairs, capped at an
    /// internal bound. Two runs with the same call/outcome sequence produce
    /// identical traces — the determinism hook the proptests assert on.
    pub fn trace(&self) -> &[(u64, BreakerState)] {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(3, 4);
        for _ in 0..2 {
            assert_eq!(b.admit(), Ok(()));
            b.on_failure();
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(), Ok(()));
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 1);
    }

    #[test]
    fn success_resets_the_failure_run() {
        let mut b = CircuitBreaker::new(3, 4);
        b.on_failure();
        b.on_failure();
        b.on_success();
        b.on_failure();
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Closed, "run was interrupted");
    }

    #[test]
    fn cooldown_counts_refusals_then_half_opens() {
        let mut b = CircuitBreaker::new(1, 3);
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(), Err(2));
        assert_eq!(b.admit(), Err(1));
        assert_eq!(b.admit(), Err(0));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.admit(), Ok(()), "the probe is admitted");
    }

    #[test]
    fn probe_outcome_decides_the_next_state() {
        let trip = |probe_ok: bool| {
            let mut b = CircuitBreaker::new(1, 1);
            b.on_failure();
            assert_eq!(b.admit(), Err(0));
            assert_eq!(b.state(), BreakerState::HalfOpen);
            assert_eq!(b.admit(), Ok(()));
            if probe_ok {
                b.on_success();
            } else {
                b.on_failure();
            }
            b
        };
        assert_eq!(trip(true).state(), BreakerState::Closed);
        let reopened = trip(false);
        assert_eq!(reopened.state(), BreakerState::Open);
        assert_eq!(reopened.opens(), 2);
    }

    #[test]
    fn trace_is_a_deterministic_total_order() {
        let run = || {
            let mut b = CircuitBreaker::new(2, 2);
            let outcomes = [false, false, true, false, false, false];
            for &ok in &outcomes {
                if b.admit().is_ok() {
                    if ok {
                        b.on_success();
                    } else {
                        b.on_failure();
                    }
                }
            }
            b.trace().to_vec()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(!a.is_empty());
    }
}
