//! The one construction surface for every geocoding backend.
//!
//! The old positional constructors (`ReverseGeocoder::{new, with_capacity,
//! with_shards}`) stopped scaling the moment backends multiplied: a
//! resilient Yahoo-backed geocoder needs a cache capacity *and* a shard
//! count *and* a fault plan *and* a retry policy, and positional arguments
//! can't say which is which. [`GeocoderBuilder`] replaces them —
//! `.capacity(..)`, `.shards(..)`, `.backend(..)` — and is what the service
//! layer, the analysis pipeline and the benches all construct through. The
//! old constructors survive as deprecated shims over the builder.

use std::fmt;
use std::str::FromStr;

use crate::gazetteer::Gazetteer;
use crate::reverse::{self, ReverseGeocoder};
use crate::yahoo::YahooPlaceFinder;

use super::fault::FaultPlan;
use super::resilient::ResilientGeocoder;
use super::yahoo_backend::YahooBackend;
use super::Geocoder;

/// Which backend a [`GeocoderBuilder`] assembles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackendChoice {
    /// The local gazetteer cache — infallible, the default.
    #[default]
    Gazetteer,
    /// The Yahoo XML round-trip endpoint with daily-quota rollover.
    Yahoo,
    /// The Yahoo endpoint behind the resilient decorator (retry → stale
    /// cache → local gazetteer).
    Resilient,
}

impl FromStr for BackendChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "gazetteer" => Ok(BackendChoice::Gazetteer),
            "yahoo" => Ok(BackendChoice::Yahoo),
            "resilient" => Ok(BackendChoice::Resilient),
            other => Err(format!(
                "unknown backend {other:?} (expected gazetteer, yahoo or resilient)"
            )),
        }
    }
}

/// `Display` mirrors the CLI spelling so `--backend` round-trips.
impl fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BackendChoice::Gazetteer => "gazetteer",
            BackendChoice::Yahoo => "yahoo",
            BackendChoice::Resilient => "resilient",
        })
    }
}

/// Knobs of the [`ResilientGeocoder`](super::ResilientGeocoder) decorator.
/// `Copy` so it can ride inside a `PipelineConfig`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResiliencePolicy {
    /// Retries beyond each lookup's first attempt.
    pub max_retries: u32,
    /// Decorrelated-jitter backoff floor, in milliseconds.
    pub backoff_base_ms: u64,
    /// Decorrelated-jitter backoff ceiling, in milliseconds.
    pub backoff_cap_ms: u64,
    /// Seed of the jitter stream.
    pub backoff_seed: u64,
    /// Consecutive failures before the circuit breaker trips.
    pub breaker_threshold: u32,
    /// Refused admissions before the open breaker half-opens for a probe.
    pub breaker_cooldown: u32,
    /// Client-side daily budget of primary dial attempts.
    pub daily_budget: u64,
    /// Per-call deadline enforced at the endpoint, in milliseconds.
    pub deadline_ms: u64,
}

impl Default for ResiliencePolicy {
    /// Paper-tier defaults: 2 retries, 50–2000 ms jitter, trip after 5
    /// straight failures with a 16-admission cooldown, unbounded client
    /// budget, 500 ms deadline.
    fn default() -> Self {
        ResiliencePolicy {
            max_retries: 2,
            backoff_base_ms: 50,
            backoff_cap_ms: 2_000,
            backoff_seed: 0xB0FF,
            breaker_threshold: 5,
            breaker_cooldown: 16,
            daily_budget: u64::MAX,
            deadline_ms: 500,
        }
    }
}

/// Builder for every geocoder in the crate; start one with
/// [`ReverseGeocoder::builder`] or [`GeocoderBuilder::new`].
///
/// `build_reverse()` yields the concrete local geocoder (what most code
/// wants); `build()` yields whichever `Box<dyn Geocoder>` the configured
/// [`BackendChoice`] names.
pub struct GeocoderBuilder<'g> {
    gazetteer: &'g Gazetteer,
    capacity: usize,
    shards: Option<usize>,
    backend: BackendChoice,
    faults: FaultPlan,
    policy: ResiliencePolicy,
    yahoo_quota: u64,
    yahoo_latency_ms: u64,
}

impl<'g> GeocoderBuilder<'g> {
    /// A builder with the defaults: 1M-cell cache, machine-sized shard
    /// count, gazetteer backend, no faults.
    pub fn new(gazetteer: &'g Gazetteer) -> Self {
        GeocoderBuilder {
            gazetteer,
            capacity: 1 << 20,
            shards: None,
            backend: BackendChoice::default(),
            faults: FaultPlan::default(),
            policy: ResiliencePolicy::default(),
            yahoo_quota: 50_000,
            yahoo_latency_ms: 120,
        }
    }

    /// Total cache capacity in quantized cells, split across the shards.
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Cache shard count (rounded up to a power of two); `1` reproduces
    /// the old single-lock layout the contention bench uses as baseline.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Which backend [`build`](Self::build) assembles.
    pub fn backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// Fault schedule injected at the Yahoo endpoint (ignored by the plain
    /// gazetteer backend, which has no endpoint to fault).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Resilience knobs for the [`BackendChoice::Resilient`] decorator.
    pub fn resilience(mut self, policy: ResiliencePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Daily quota and per-request latency of the Yahoo endpoint.
    pub fn yahoo_limits(mut self, daily_quota: u64, latency_ms: u64) -> Self {
        self.yahoo_quota = daily_quota;
        self.yahoo_latency_ms = latency_ms;
        self
    }

    fn shard_count(&self) -> usize {
        self.shards.unwrap_or_else(reverse::default_shard_count)
    }

    /// The concrete local geocoder (ignores the backend choice).
    pub fn build_reverse(&self) -> ReverseGeocoder<'g> {
        ReverseGeocoder::assemble(self.gazetteer, self.capacity, self.shard_count())
    }

    fn build_yahoo(&self, with_deadline: bool) -> YahooBackend<'g> {
        let mut api =
            YahooPlaceFinder::with_limits(self.gazetteer, self.yahoo_quota, self.yahoo_latency_ms);
        if !self.faults.is_quiet() {
            api = api.with_fault_plan(self.faults);
        }
        if with_deadline {
            api = api.with_deadline(self.policy.deadline_ms);
        }
        YahooBackend::new(api)
    }

    /// The configured backend as a trait object — what the analysis
    /// pipeline plugs in without naming any concrete geocoder type.
    pub fn build(&self) -> Box<dyn Geocoder + 'g> {
        match self.backend {
            BackendChoice::Gazetteer => Box::new(self.build_reverse()),
            // The raw endpoint has no deadline: nothing above it would
            // retry a timeout, so dropped requests wait the full default.
            BackendChoice::Yahoo => Box::new(self.build_yahoo(false)),
            BackendChoice::Resilient => Box::new(ResilientGeocoder::new(
                Box::new(self.build_yahoo(true)),
                self.build_reverse(),
                self.policy,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stir_geoindex::Point;

    #[test]
    fn backend_choice_parses_and_displays() {
        for (s, choice) in [
            ("gazetteer", BackendChoice::Gazetteer),
            ("yahoo", BackendChoice::Yahoo),
            ("resilient", BackendChoice::Resilient),
        ] {
            assert_eq!(s.parse::<BackendChoice>().unwrap(), choice);
            assert_eq!(choice.to_string(), s);
        }
        assert!("google".parse::<BackendChoice>().is_err());
        assert_eq!(BackendChoice::default(), BackendChoice::Gazetteer);
    }

    #[test]
    fn builder_assembles_each_backend() {
        let g = Gazetteer::load();
        let p = Point::new(37.517, 127.047);
        let mut answers = Vec::new();
        for choice in [
            BackendChoice::Gazetteer,
            BackendChoice::Yahoo,
            BackendChoice::Resilient,
        ] {
            let backend = GeocoderBuilder::new(&g).backend(choice).build();
            assert_eq!(backend.name(), choice.to_string());
            let rec = backend.lookup(p).unwrap().expect("gangnam resolves");
            answers.push((rec.state, rec.county));
        }
        assert!(
            answers.windows(2).all(|w| w[0] == w[1]),
            "every backend answers from the same gazetteer: {answers:?}"
        );
    }

    #[test]
    fn builder_forwards_cache_geometry() {
        let g = Gazetteer::load();
        let geo = GeocoderBuilder::new(&g)
            .capacity(1 << 10)
            .shards(9)
            .build_reverse();
        assert_eq!(geo.shard_count(), 16);
    }

    #[test]
    fn faulted_resilient_backend_still_answers_like_the_quiet_one() {
        let g = Gazetteer::load();
        let plan = FaultPlan::parse("drop:0.2,malformed:0.1,seed:5").unwrap();
        let noisy = GeocoderBuilder::new(&g)
            .backend(BackendChoice::Resilient)
            .fault_plan(plan)
            .build();
        let quiet = GeocoderBuilder::new(&g)
            .backend(BackendChoice::Resilient)
            .build();
        for i in 0..200 {
            let p = Point::new(33.0 + (i as f64) * 0.021, 124.5 + (i as f64) * 0.024);
            let a = noisy.lookup(p).unwrap();
            let b = quiet.lookup(p).unwrap();
            assert_eq!(
                a.as_ref().map(|r| (&r.state, &r.county)),
                b.as_ref().map(|r| (&r.state, &r.county)),
                "answers must not depend on the fault schedule (point {i})"
            );
        }
        assert!(noisy.traffic().is_exact());
    }
}
