//! The geocoding service layer: one [`Geocoder`] trait, many backends.
//!
//! The paper's pipeline (§III-B) called the real Yahoo Open API — a
//! quota-limited, latency-bound, failure-prone 2011 free tier. The analysis
//! layer should not care which of our stand-ins answers a coordinate, so
//! this module abstracts the lookup behind a trait with three
//! implementations:
//!
//! * the local [`ReverseGeocoder`] — infallible,
//!   in-process, the default;
//! * [`YahooBackend`] — the XML round-trip endpoint with daily-quota
//!   rollover, optionally under a seeded [`FaultPlan`];
//! * [`ResilientGeocoder`] — a decorator adding per-call deadlines, bounded
//!   retries with decorrelated-jitter backoff, a three-state
//!   [`CircuitBreaker`], a client-side daily budget, and a degraded-mode
//!   fallback chain (retry → stale cache → local gazetteer) so a flaky
//!   backend never aborts an experiment.
//!
//! Everything is deterministic by construction: faults are decided by a
//! seeded hash of the attempt index, backoff draws from a seeded
//! [`rand::rngs::StdRng`], the breaker cools down in admission counts (not
//! wall clock), and all "waiting" is simulated-milliseconds accounting. Two
//! runs with the same configuration produce the same traffic report, and —
//! because every backend ultimately answers from the same gazetteer — the
//! same analysis output as a fault-free run.

mod breaker;
mod builder;
mod fault;
mod resilient;
mod yahoo_backend;

pub use breaker::{BreakerState, CircuitBreaker};
pub use builder::{BackendChoice, GeocoderBuilder, ResiliencePolicy};
pub use fault::{Fault, FaultPlan};
pub use resilient::ResilientGeocoder;
pub use yahoo_backend::YahooBackend;

use stir_geoindex::Point;

use crate::error::GeocodeError;
use crate::location::LocationRecord;
use crate::reverse::ReverseGeocoder;

/// Traffic counters every backend can report, threaded into
/// `stir_core::metrics::PipelineMetrics` by the analysis pipeline.
///
/// The outcome counters partition the traffic: after all concurrent callers
/// have finished, `lookups == resolved + fallbacks + misses` holds exactly
/// (each lookup lands in exactly one bucket; errored lookups that no
/// fallback rescued count as misses).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BackendTraffic {
    /// Total lookups issued against this backend.
    pub lookups: u64,
    /// Lookups the primary path resolved to a record.
    pub resolved: u64,
    /// Lookups answered (with a record) by a fallback path.
    pub fallbacks: u64,
    /// Lookups that ended without a record.
    pub misses: u64,
    /// Lookups answered from a cache (the quantized geocoder cache, plus
    /// the resilient layer's stale cache).
    pub cache_hits: u64,
    /// Errors observed along the way (retried attempts count each failure).
    pub errors: u64,
    /// Retry attempts issued beyond each lookup's first try.
    pub retries: u64,
    /// Closed→open circuit-breaker transitions.
    pub breaker_opens: u64,
    /// Fallback answers served from the stale cache (including cached
    /// negative answers).
    pub stale_fallbacks: u64,
    /// Fallback answers computed by the local gazetteer.
    pub local_fallbacks: u64,
    /// Simulated API days consumed (quota rollovers + the first day).
    pub quota_days: u64,
    /// Simulated wall-clock cost in milliseconds (latency + backoff).
    pub simulated_ms: u64,
}

impl BackendTraffic {
    /// Whether the outcome counters partition the lookups exactly.
    pub fn is_exact(&self) -> bool {
        self.lookups == self.resolved + self.fallbacks + self.misses
    }
}

/// A reverse-geocoding backend: GPS point in, [`LocationRecord`] out.
///
/// Object safe; the pipeline holds `Box<dyn Geocoder + '_>` and never names
/// a concrete backend type. `Ok(None)` means "answered: outside coverage";
/// `Err(_)` means the backend could not answer at all.
pub trait Geocoder: Send + Sync {
    /// Resolves one point, or `Ok(None)` outside coverage.
    fn lookup(&self, p: Point) -> Result<Option<LocationRecord>, GeocodeError>;

    /// Resolves a batch, preserving order; per-point results so one failed
    /// lookup does not poison the rest.
    fn lookup_batch(&self, points: &[Point]) -> Vec<Result<Option<LocationRecord>, GeocodeError>> {
        points.iter().map(|&p| self.lookup(p)).collect()
    }

    /// Resolves one point straight to its gazetteer district id, or
    /// `Ok(None)` outside coverage. Same answer as
    /// [`Geocoder::lookup`]`.map(|r| r.district)` — every backend ultimately
    /// answers from the gazetteer, whose records carry their id — but hot
    /// paths that only need the district can skip materializing the record
    /// (the local geocoder's override allocates nothing at all).
    fn resolve_id(&self, p: Point) -> Result<Option<crate::DistrictId>, GeocodeError> {
        Ok(self.lookup(p)?.and_then(|r| r.district))
    }

    /// Resolves a batch straight to district ids into a caller-owned
    /// buffer, preserving order. `out` is cleared first; a caller that
    /// reuses the same buffer across batches amortizes its allocation to
    /// zero. Per-point results, so one failed lookup does not poison the
    /// rest — semantics and traffic are exactly one [`Geocoder::resolve_id`]
    /// call per point, which is what fused pipelines rely on when they pin
    /// batched output against the point-at-a-time reference path.
    fn resolve_id_batch(
        &self,
        points: &[Point],
        out: &mut Vec<Result<Option<crate::DistrictId>, GeocodeError>>,
    ) {
        out.clear();
        out.reserve(points.len());
        for &p in points {
            out.push(self.resolve_id(p));
        }
    }

    /// Columnar variant of [`Geocoder::resolve_id_batch`]: the points
    /// arrive as parallel `lats`/`lons` columns (the fused engine's morsel
    /// layout), so a column-oriented caller geocodes a whole surviving
    /// batch in one call without assembling a `Point` slice first. `out`
    /// is cleared, then filled in input order; semantics and traffic are
    /// exactly one [`Geocoder::resolve_id`] per point.
    fn resolve_id_cols(
        &self,
        lats: &[f64],
        lons: &[f64],
        out: &mut Vec<Result<Option<crate::DistrictId>, GeocodeError>>,
    ) {
        debug_assert_eq!(lats.len(), lons.len());
        out.clear();
        out.reserve(lats.len());
        for (&lat, &lon) in lats.iter().zip(lons) {
            out.push(self.resolve_id(Point::new(lat, lon)));
        }
    }

    /// Snapshot of this backend's traffic counters (exact once concurrent
    /// callers have joined).
    fn traffic(&self) -> BackendTraffic;

    /// Short stable name for metrics labels (`"gazetteer"`, `"yahoo"`,
    /// `"resilient"`).
    fn name(&self) -> &'static str;
}

/// The local gazetteer cache is itself a backend — the infallible default.
impl Geocoder for ReverseGeocoder<'_> {
    fn lookup(&self, p: Point) -> Result<Option<LocationRecord>, GeocodeError> {
        Ok(ReverseGeocoder::lookup(self, p))
    }

    fn lookup_batch(&self, points: &[Point]) -> Vec<Result<Option<LocationRecord>, GeocodeError>> {
        ReverseGeocoder::lookup_batch(self, points)
            .into_iter()
            .map(Ok)
            .collect()
    }

    /// Zero-allocation override: skips the [`LocationRecord`] (and its
    /// synthesized town label) entirely — one sharded-cache probe, one id.
    fn resolve_id(&self, p: Point) -> Result<Option<crate::DistrictId>, GeocodeError> {
        Ok(self.resolve(p))
    }

    /// Columnar override: the infallible geocoder batches its counter
    /// flushes (one atomic add per counter per batch instead of several
    /// per point) via [`ReverseGeocoder::resolve_cols`].
    fn resolve_id_cols(
        &self,
        lats: &[f64],
        lons: &[f64],
        out: &mut Vec<Result<Option<crate::DistrictId>, GeocodeError>>,
    ) {
        out.clear();
        out.reserve(lats.len());
        self.resolve_cols(lats, lons, |id| out.push(Ok(id)));
    }

    fn traffic(&self) -> BackendTraffic {
        let s = self.stats();
        BackendTraffic {
            lookups: s.lookups,
            resolved: s.resolved,
            misses: s.misses,
            cache_hits: s.cache_hits,
            ..BackendTraffic::default()
        }
    }

    fn name(&self) -> &'static str {
        "gazetteer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gazetteer::Gazetteer;

    #[test]
    fn reverse_geocoder_is_a_backend() {
        let g = Gazetteer::load();
        let backend: Box<dyn Geocoder + '_> = ReverseGeocoder::builder(&g).build();
        assert_eq!(backend.name(), "gazetteer");
        let rec = backend
            .lookup(Point::new(37.517, 127.047))
            .unwrap()
            .unwrap();
        assert_eq!(rec.county, "Gangnam-gu");
        assert_eq!(backend.lookup(Point::new(35.68, 139.69)).unwrap(), None);
        let t = backend.traffic();
        assert_eq!(t.lookups, 2);
        assert_eq!(t.resolved, 1);
        assert_eq!(t.misses, 1);
        assert!(t.is_exact());
    }

    #[test]
    fn resolve_id_matches_lookup_district() {
        let g = Gazetteer::load();
        let backend: Box<dyn Geocoder + '_> = ReverseGeocoder::builder(&g).build();
        let inside = Point::new(37.517, 127.047);
        let outside = Point::new(35.68, 139.69);
        let id = backend.resolve_id(inside).unwrap().unwrap();
        assert_eq!(g.district(id).name_en, "Gangnam-gu");
        assert_eq!(backend.lookup(inside).unwrap().unwrap().district, Some(id));
        assert_eq!(backend.resolve_id(outside).unwrap(), None);
    }

    #[test]
    fn batch_through_the_trait_preserves_order() {
        let g = Gazetteer::load();
        let backend = ReverseGeocoder::builder(&g).build_reverse();
        let out = Geocoder::lookup_batch(
            &backend,
            &[Point::new(37.517, 127.047), Point::new(35.68, 139.69)],
        );
        assert!(out[0].as_ref().unwrap().is_some());
        assert!(out[1].as_ref().unwrap().is_none());
    }

    #[test]
    fn resolve_id_batch_matches_point_at_a_time_and_reuses_the_buffer() {
        let g = Gazetteer::load();
        let backend: Box<dyn Geocoder + '_> = ReverseGeocoder::builder(&g).build();
        let points = [
            Point::new(37.517, 127.047),
            Point::new(35.68, 139.69),
            Point::new(37.517, 126.866),
        ];
        let mut out = Vec::new();
        backend.resolve_id_batch(&points, &mut out);
        assert_eq!(out.len(), points.len());
        for (&p, got) in points.iter().zip(&out) {
            assert_eq!(got.as_ref().unwrap(), &backend.resolve_id(p).unwrap());
        }
        // A second call clears before filling — no stale carry-over.
        backend.resolve_id_batch(&points[..1], &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].as_ref().unwrap().is_some());
    }

    #[test]
    fn resolve_id_cols_matches_the_row_batch_on_every_backend() {
        let g = Gazetteer::load();
        let points = [
            Point::new(37.517, 127.047),
            Point::new(35.68, 139.69),
            Point::new(37.517, 126.866),
            Point::new(33.50, 126.53),
        ];
        let lats: Vec<f64> = points.iter().map(|p| p.lat).collect();
        let lons: Vec<f64> = points.iter().map(|p| p.lon).collect();
        for choice in [
            BackendChoice::Gazetteer,
            BackendChoice::Yahoo,
            BackendChoice::Resilient,
        ] {
            let rows_backend = GeocoderBuilder::new(&g).backend(choice).build();
            let cols_backend = GeocoderBuilder::new(&g).backend(choice).build();
            let mut rows = Vec::new();
            rows_backend.resolve_id_batch(&points, &mut rows);
            let mut cols = Vec::new();
            cols_backend.resolve_id_cols(&lats, &lons, &mut cols);
            assert_eq!(rows.len(), cols.len(), "{choice}");
            for (a, b) in rows.iter().zip(&cols) {
                assert_eq!(a.as_ref().ok(), b.as_ref().ok(), "{choice}");
            }
            // Identical traffic: the column path is the same lookups.
            assert_eq!(rows_backend.traffic(), cols_backend.traffic(), "{choice}");
            // Buffer reuse clears stale answers.
            cols_backend.resolve_id_cols(&lats[..1], &lons[..1], &mut cols);
            assert_eq!(cols.len(), 1);
        }
    }
}
