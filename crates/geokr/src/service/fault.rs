//! Deterministic fault injection for the mock endpoint.
//!
//! A [`FaultPlan`] is a seeded schedule: the fault (if any) for attempt
//! `i` is a pure function of `(seed, i)` — a SplitMix64 hash mapped to a
//! unit float and compared against cumulative rate bands. No RNG state is
//! carried between calls, so the schedule is insensitive to thread
//! interleaving: attempt 17 drops in every run with the same plan, no
//! matter which worker issues it. That is what makes "fig7 output is
//! byte-identical under a 10% drop rate" a testable claim instead of a
//! flaky one.

use std::fmt;

/// One injected failure mode, mirroring what a 2011 free-tier geocoding
/// API actually did under load.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The request vanishes; the caller waits out its deadline.
    Drop,
    /// The response is late by [`FaultPlan::delay_ms`].
    Delay,
    /// The response arrives garbled (unparseable XML).
    MalformedXml,
    /// A spurious rate-limit refusal that consumes no quota slot.
    QuotaExceeded,
}

/// A seeded schedule of injected faults, decided per attempt index.
///
/// Rates are probabilities in `[0, 1]`; they are applied as disjoint bands
/// (`drop`, then `delay`, then `malformed`, then `quota`), so their sum
/// must stay ≤ 1. `Copy` so it can ride inside a `PipelineConfig`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Probability a request is dropped.
    pub drop_rate: f64,
    /// Probability a response is delayed by [`delay_ms`](Self::delay_ms).
    pub delay_rate: f64,
    /// Extra latency injected by a [`Fault::Delay`], in milliseconds.
    pub delay_ms: u64,
    /// Probability a response is garbled.
    pub malformed_rate: f64,
    /// Probability of a spurious rate-limit refusal.
    pub quota_rate: f64,
    /// Seed for the per-attempt hash.
    pub seed: u64,
}

impl Default for FaultPlan {
    /// A quiet plan: no faults, a 250 ms delay if one is ever enabled, and
    /// a fixed non-zero seed.
    fn default() -> Self {
        FaultPlan {
            drop_rate: 0.0,
            delay_rate: 0.0,
            delay_ms: 250,
            malformed_rate: 0.0,
            quota_rate: 0.0,
            seed: 0x5EED,
        }
    }
}

/// SplitMix64 finalizer over the seed and attempt index.
fn mix(seed: u64, idx: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(idx)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// The fault (if any) for attempt `idx` — a pure function of the plan.
    pub fn decide(&self, idx: u64) -> Option<Fault> {
        if self.is_quiet() {
            return None;
        }
        let u = (mix(self.seed, idx) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let mut band = self.drop_rate;
        if u < band {
            return Some(Fault::Drop);
        }
        band += self.delay_rate;
        if u < band {
            return Some(Fault::Delay);
        }
        band += self.malformed_rate;
        if u < band {
            return Some(Fault::MalformedXml);
        }
        band += self.quota_rate;
        if u < band {
            return Some(Fault::QuotaExceeded);
        }
        None
    }

    /// Whether the plan injects nothing.
    pub fn is_quiet(&self) -> bool {
        self.drop_rate <= 0.0
            && self.delay_rate <= 0.0
            && self.malformed_rate <= 0.0
            && self.quota_rate <= 0.0
    }

    /// Parses the CLI spec: comma-separated `kind:rate` terms plus optional
    /// `seed:N`, e.g. `drop:0.1,malformed:0.01,seed:42`. A delay term may
    /// carry its latency: `delay:0.05@250`. `none` (or an empty spec) is
    /// the quiet plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        let spec = spec.trim();
        if spec.is_empty() || spec == "none" {
            return Ok(plan);
        }
        for term in spec.split(',') {
            let term = term.trim();
            let (kind, value) = term
                .split_once(':')
                .ok_or_else(|| format!("fault term {term:?} is not `kind:value`"))?;
            let rate = |v: &str| -> Result<f64, String> {
                let r: f64 = v
                    .parse()
                    .map_err(|_| format!("fault rate {v:?} is not a number"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("fault rate {r} is outside [0, 1]"));
                }
                Ok(r)
            };
            match kind {
                "drop" => plan.drop_rate = rate(value)?,
                "delay" => match value.split_once('@') {
                    Some((r, ms)) => {
                        plan.delay_rate = rate(r)?;
                        plan.delay_ms = ms
                            .parse()
                            .map_err(|_| format!("delay latency {ms:?} is not a number"))?;
                    }
                    None => plan.delay_rate = rate(value)?,
                },
                "malformed" => plan.malformed_rate = rate(value)?,
                "quota" => plan.quota_rate = rate(value)?,
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("seed {value:?} is not a number"))?
                }
                other => {
                    return Err(format!(
                    "unknown fault kind {other:?} (expected drop, delay, malformed, quota or seed)"
                ))
                }
            }
        }
        let total = plan.drop_rate + plan.delay_rate + plan.malformed_rate + plan.quota_rate;
        if total > 1.0 {
            return Err(format!("fault rates sum to {total}, which exceeds 1"));
        }
        Ok(plan)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_quiet() {
            return write!(f, "none");
        }
        let mut terms = Vec::new();
        if self.drop_rate > 0.0 {
            terms.push(format!("drop:{}", self.drop_rate));
        }
        if self.delay_rate > 0.0 {
            terms.push(format!("delay:{}@{}", self.delay_rate, self.delay_ms));
        }
        if self.malformed_rate > 0.0 {
            terms.push(format!("malformed:{}", self.malformed_rate));
        }
        if self.quota_rate > 0.0 {
            terms.push(format!("quota:{}", self.quota_rate));
        }
        terms.push(format!("seed:{}", self.seed));
        write!(f, "{}", terms.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_never_faults() {
        let plan = FaultPlan::default();
        assert!(plan.is_quiet());
        assert!((0..10_000).all(|i| plan.decide(i).is_none()));
    }

    #[test]
    fn decide_is_a_pure_function_of_seed_and_index() {
        let plan = FaultPlan {
            drop_rate: 0.2,
            malformed_rate: 0.1,
            seed: 7,
            ..FaultPlan::default()
        };
        let a: Vec<_> = (0..1000).map(|i| plan.decide(i)).collect();
        let b: Vec<_> = (0..1000).map(|i| plan.decide(i)).collect();
        assert_eq!(a, b);
        let reseeded = FaultPlan { seed: 8, ..plan };
        let c: Vec<_> = (0..1000).map(|i| reseeded.decide(i)).collect();
        assert_ne!(a, c, "a different seed must reshuffle the schedule");
    }

    #[test]
    fn rates_land_near_their_bands() {
        let plan = FaultPlan {
            drop_rate: 0.1,
            delay_rate: 0.2,
            malformed_rate: 0.05,
            quota_rate: 0.02,
            seed: 99,
            ..FaultPlan::default()
        };
        let n = 20_000u64;
        let mut counts = [0u64; 4];
        for i in 0..n {
            match plan.decide(i) {
                Some(Fault::Drop) => counts[0] += 1,
                Some(Fault::Delay) => counts[1] += 1,
                Some(Fault::MalformedXml) => counts[2] += 1,
                Some(Fault::QuotaExceeded) => counts[3] += 1,
                None => {}
            }
        }
        let close = |observed: u64, rate: f64| {
            let expect = rate * n as f64;
            (observed as f64 - expect).abs() < expect * 0.15 + 10.0
        };
        assert!(close(counts[0], 0.1), "drop count {}", counts[0]);
        assert!(close(counts[1], 0.2), "delay count {}", counts[1]);
        assert!(close(counts[2], 0.05), "malformed count {}", counts[2]);
        assert!(close(counts[3], 0.02), "quota count {}", counts[3]);
    }

    #[test]
    fn parse_roundtrips_the_readme_examples() {
        let plan = FaultPlan::parse("drop:0.1").unwrap();
        assert_eq!(plan.drop_rate, 0.1);
        assert!(!plan.is_quiet());

        let plan =
            FaultPlan::parse("drop:0.1,delay:0.05@400,malformed:0.01,quota:0.02,seed:42").unwrap();
        assert_eq!(plan.delay_rate, 0.05);
        assert_eq!(plan.delay_ms, 400);
        assert_eq!(plan.seed, 42);
        let rendered = plan.to_string();
        assert_eq!(FaultPlan::parse(&rendered).unwrap(), plan);

        assert!(FaultPlan::parse("none").unwrap().is_quiet());
        assert!(FaultPlan::parse("").unwrap().is_quiet());
    }

    #[test]
    fn parse_rejects_nonsense() {
        assert!(FaultPlan::parse("drop").is_err());
        assert!(FaultPlan::parse("drop:2.0").is_err());
        assert!(FaultPlan::parse("drop:-0.1").is_err());
        assert!(FaultPlan::parse("sharks:0.5").is_err());
        assert!(FaultPlan::parse("drop:0.9,delay:0.9").is_err());
        assert!(FaultPlan::parse("seed:abc").is_err());
    }
}
