//! The resilient decorator: retry → stale cache → local gazetteer.
//!
//! [`ResilientGeocoder`] wraps any primary [`Geocoder`] and guarantees an
//! answer: a transient primary failure is retried (bounded, with
//! decorrelated-jitter backoff); a persistent one trips the circuit
//! breaker; and whenever the primary cannot answer — retries exhausted,
//! breaker open, or the client-side daily budget spent — the lookup falls
//! back to the stale cache of previous primary answers and then to the
//! local gazetteer. An experiment therefore never aborts on a flaky
//! backend, and the traffic report says exactly how degraded the run was.
//!
//! Determinism: backoff draws from a seeded [`StdRng`] behind a mutex (one
//! global jitter stream), the breaker cools down in admission counts, and
//! all waiting is simulated-milliseconds accounting — no real sleeps, no
//! wall clock anywhere.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stir_geoindex::Point;

use crate::error::GeocodeError;
use crate::location::LocationRecord;
use crate::reverse::{self, ReverseGeocoder};

use super::breaker::{BreakerState, CircuitBreaker};
use super::builder::ResiliencePolicy;
use super::{BackendTraffic, Geocoder};

/// One stale-cache shard: quantized cell → last primary answer (negative
/// answers are stale-served too — "known outside coverage" is an answer).
type StaleShard = Mutex<HashMap<(i32, i32), Option<LocationRecord>>>;

/// Per-shard stale-cache budget; a full shard is cleared wholesale, like
/// the reverse geocoder's cache.
const STALE_SHARD_CAPACITY: usize = 1 << 16;

/// A [`Geocoder`] decorator that degrades instead of failing.
pub struct ResilientGeocoder<'g> {
    primary: Box<dyn Geocoder + 'g>,
    fallback: ReverseGeocoder<'g>,
    policy: ResiliencePolicy,
    breaker: Mutex<CircuitBreaker>,
    /// Seeded jitter stream + previous sleep (decorrelated jitter needs it).
    backoff: Mutex<(StdRng, u64)>,
    stale: Box<[StaleShard]>,
    stale_mask: usize,
    /// Primary dial attempts charged against the client-side daily budget.
    issued: AtomicU64,
    lookups: AtomicU64,
    resolved: AtomicU64,
    fallbacks: AtomicU64,
    misses: AtomicU64,
    errors: AtomicU64,
    retries: AtomicU64,
    stale_served: AtomicU64,
    local_served: AtomicU64,
    budget_denied: AtomicU64,
    breaker_denied: AtomicU64,
    backoff_ms: AtomicU64,
}

impl<'g> ResilientGeocoder<'g> {
    /// Wraps `primary`, falling back to `fallback` (the local gazetteer
    /// cache) under the given policy.
    pub fn new(
        primary: Box<dyn Geocoder + 'g>,
        fallback: ReverseGeocoder<'g>,
        policy: ResiliencePolicy,
    ) -> Self {
        let shards = reverse::default_shard_count();
        ResilientGeocoder {
            primary,
            fallback,
            breaker: Mutex::new(CircuitBreaker::new(
                policy.breaker_threshold,
                policy.breaker_cooldown,
            )),
            backoff: Mutex::new((
                StdRng::seed_from_u64(policy.backoff_seed),
                policy.backoff_base_ms,
            )),
            policy,
            stale: (0..shards)
                .map(|_| Mutex::new(HashMap::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            stale_mask: shards - 1,
            issued: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
            resolved: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            stale_served: AtomicU64::new(0),
            local_served: AtomicU64::new(0),
            budget_denied: AtomicU64::new(0),
            breaker_denied: AtomicU64::new(0),
            backoff_ms: AtomicU64::new(0),
        }
    }

    /// The wrapped primary backend.
    pub fn primary(&self) -> &dyn Geocoder {
        self.primary.as_ref()
    }

    /// The breaker's current state.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.lock().state()
    }

    /// The breaker's transition trace — `(event index, new state)` pairs.
    /// With a seeded fault plan this is a pure function of the schedule;
    /// the proptests assert two identical runs produce identical traces.
    pub fn breaker_trace(&self) -> Vec<(u64, BreakerState)> {
        self.breaker.lock().trace().to_vec()
    }

    /// Lookups refused by the spent client-side budget (degraded straight
    /// to the fallback chain).
    pub fn budget_denials(&self) -> u64 {
        self.budget_denied.load(Ordering::Relaxed)
    }

    /// Lookups refused by the open circuit breaker.
    pub fn breaker_denials(&self) -> u64 {
        self.breaker_denied.load(Ordering::Relaxed)
    }

    /// Total simulated backoff wait, in milliseconds.
    pub fn backoff_ms(&self) -> u64 {
        self.backoff_ms.load(Ordering::Relaxed)
    }

    /// Decorrelated jitter (the AWS recipe): each sleep is uniform in
    /// `[base, min(cap, 3 × previous)]`, so consecutive retries spread out
    /// without synchronizing across callers.
    fn next_backoff_ms(&self) -> u64 {
        let base = self.policy.backoff_base_ms.max(1);
        let cap = self.policy.backoff_cap_ms.max(base);
        let mut guard = self.backoff.lock();
        let (rng, prev) = &mut *guard;
        let hi = prev.saturating_mul(3).clamp(base, cap);
        let ms = rng.gen_range(base..=hi);
        *prev = ms;
        ms
    }

    fn stale_shard(&self, cell: (i32, i32)) -> &StaleShard {
        &self.stale[reverse::cell_shard(cell, self.stale_mask)]
    }

    fn store_stale(&self, p: Point, answer: Option<LocationRecord>) {
        let cell = reverse::quantize(p);
        let mut shard = self.stale_shard(cell).lock();
        if shard.len() >= STALE_SHARD_CAPACITY {
            shard.clear();
        }
        shard.insert(cell, answer);
    }

    fn load_stale(&self, p: Point) -> Option<Option<LocationRecord>> {
        let cell = reverse::quantize(p);
        self.stale_shard(cell).lock().get(&cell).cloned()
    }

    /// The degraded path: stale cache first, local gazetteer second.
    fn degraded(&self, p: Point) -> Option<LocationRecord> {
        let answer = if let Some(stale) = self.load_stale(p) {
            self.stale_served.fetch_add(1, Ordering::Relaxed);
            stale
        } else {
            self.local_served.fetch_add(1, Ordering::Relaxed);
            ReverseGeocoder::lookup(&self.fallback, p)
        };
        if answer.is_some() {
            self.fallbacks.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        answer
    }
}

impl Geocoder for ResilientGeocoder<'_> {
    fn lookup(&self, p: Point) -> Result<Option<LocationRecord>, GeocodeError> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let mut tries_left = u64::from(self.policy.max_retries) + 1;
        // `Some(answer)` once the primary responded (a `None` answer is
        // "responded: outside coverage"); `None` means degraded mode.
        let primary_answer: Option<Option<LocationRecord>> = loop {
            // Client-side budget gate: one unit per dial attempt.
            if self
                .issued
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |i| {
                    (i < self.policy.daily_budget).then_some(i + 1)
                })
                .is_err()
            {
                self.budget_denied.fetch_add(1, Ordering::Relaxed);
                break None;
            }
            // Breaker gate: refusals also advance the cooldown.
            if self.breaker.lock().admit().is_err() {
                self.breaker_denied.fetch_add(1, Ordering::Relaxed);
                break None;
            }
            match self.primary.lookup(p) {
                Ok(answer) => {
                    self.breaker.lock().on_success();
                    break Some(answer);
                }
                Err(e) => {
                    self.breaker.lock().on_failure();
                    self.errors.fetch_add(1, Ordering::Relaxed);
                    tries_left -= 1;
                    if tries_left == 0 || !e.retryable() {
                        break None;
                    }
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    let ms = self.next_backoff_ms();
                    self.backoff_ms.fetch_add(ms, Ordering::Relaxed);
                }
            }
        };
        Ok(match primary_answer {
            Some(answer) => {
                // Feed the stale cache for future degraded lookups.
                self.store_stale(p, answer.clone());
                if answer.is_some() {
                    self.resolved.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                }
                answer
            }
            None => self.degraded(p),
        })
    }

    fn traffic(&self) -> BackendTraffic {
        let upstream = self.primary.traffic();
        BackendTraffic {
            lookups: self.lookups.load(Ordering::Relaxed),
            resolved: self.resolved.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            cache_hits: upstream.cache_hits + self.stale_served.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            breaker_opens: self.breaker.lock().opens(),
            stale_fallbacks: self.stale_served.load(Ordering::Relaxed),
            local_fallbacks: self.local_served.load(Ordering::Relaxed),
            quota_days: upstream.quota_days,
            simulated_ms: upstream.simulated_ms + self.backoff_ms(),
        }
    }

    fn name(&self) -> &'static str {
        "resilient"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gazetteer::Gazetteer;
    use crate::service::{FaultPlan, GeocoderBuilder};
    use crate::yahoo::YahooPlaceFinder;

    fn resilient<'g>(
        g: &'g Gazetteer,
        plan: FaultPlan,
        policy: ResiliencePolicy,
    ) -> ResilientGeocoder<'g> {
        let api = YahooPlaceFinder::with_limits(g, u64::MAX, 0)
            .with_fault_plan(plan)
            .with_deadline(policy.deadline_ms);
        ResilientGeocoder::new(
            Box::new(super::super::YahooBackend::new(api)),
            GeocoderBuilder::new(g).build_reverse(),
            policy,
        )
    }

    #[test]
    fn quiet_primary_is_transparent() {
        let g = Gazetteer::load();
        let geo = resilient(&g, FaultPlan::default(), ResiliencePolicy::default());
        let rec = geo.lookup(Point::new(37.517, 127.047)).unwrap().unwrap();
        assert_eq!(rec.county, "Gangnam-gu");
        assert_eq!(geo.lookup(Point::new(35.68, 139.69)).unwrap(), None);
        let t = geo.traffic();
        assert_eq!((t.lookups, t.resolved, t.misses, t.fallbacks), (2, 1, 1, 0));
        assert_eq!((t.retries, t.errors, t.breaker_opens), (0, 0, 0));
        assert!(t.is_exact());
    }

    #[test]
    fn transient_faults_are_retried_away() {
        let g = Gazetteer::load();
        // 30% drops: with 3 retries the chance all four attempts of any
        // single lookup fault is below 1%, and the seeded schedule below
        // happens to always recover.
        let plan = FaultPlan {
            drop_rate: 0.3,
            seed: 11,
            ..FaultPlan::default()
        };
        let policy = ResiliencePolicy {
            max_retries: 3,
            ..ResiliencePolicy::default()
        };
        let geo = resilient(&g, plan, policy);
        let p = Point::new(37.517, 127.047);
        for _ in 0..50 {
            assert_eq!(geo.lookup(p).unwrap().unwrap().county, "Gangnam-gu");
        }
        let t = geo.traffic();
        assert_eq!(t.lookups, 50);
        assert!(t.retries > 0, "a 30% schedule must retry somewhere");
        assert_eq!(t.errors, t.retries, "every error was retried away");
        assert!(t.is_exact());
        assert!(
            t.simulated_ms > 0,
            "backoff and timeouts cost simulated time"
        );
    }

    #[test]
    fn total_outage_falls_back_to_local_gazetteer() {
        let g = Gazetteer::load();
        let plan = FaultPlan {
            drop_rate: 1.0,
            ..FaultPlan::default()
        };
        let policy = ResiliencePolicy {
            max_retries: 1,
            breaker_threshold: u32::MAX,
            ..ResiliencePolicy::default()
        };
        let geo = resilient(&g, plan, policy);
        let rec = geo.lookup(Point::new(37.517, 127.047)).unwrap().unwrap();
        assert_eq!(rec.county, "Gangnam-gu", "the fallback answers correctly");
        assert_eq!(geo.lookup(Point::new(35.68, 139.69)).unwrap(), None);
        let t = geo.traffic();
        assert_eq!(t.lookups, 2);
        assert_eq!(t.resolved, 0);
        assert_eq!(t.fallbacks, 1);
        assert_eq!(t.misses, 1);
        assert_eq!(t.local_fallbacks, 2);
        assert_eq!(t.retries, 2, "one retry per lookup");
        assert_eq!(t.errors, 4, "both attempts of both lookups failed");
        assert!(t.is_exact());
    }

    #[test]
    fn stale_cache_beats_local_fallback_once_warm() {
        let g = Gazetteer::load();
        // Quiet start warms the stale cache; then the budget runs out and
        // the same cell must be served stale, not recomputed.
        let policy = ResiliencePolicy {
            daily_budget: 1,
            ..ResiliencePolicy::default()
        };
        let geo = resilient(&g, FaultPlan::default(), policy);
        let p = Point::new(37.517, 127.047);
        assert!(geo.lookup(p).unwrap().is_some()); // consumes the whole budget
        assert!(geo.lookup(p).unwrap().is_some()); // degraded, stale-served
        let t = geo.traffic();
        assert_eq!(t.resolved, 1);
        assert_eq!(t.fallbacks, 1);
        assert_eq!(t.stale_fallbacks, 1);
        assert_eq!(t.local_fallbacks, 0);
        assert_eq!(geo.budget_denials(), 1);
        assert!(t.is_exact());
    }

    #[test]
    fn breaker_opens_under_persistent_failure_and_recovers() {
        let g = Gazetteer::load();
        let plan = FaultPlan {
            drop_rate: 1.0,
            ..FaultPlan::default()
        };
        let policy = ResiliencePolicy {
            max_retries: 0,
            breaker_threshold: 3,
            breaker_cooldown: 2,
            ..ResiliencePolicy::default()
        };
        let geo = resilient(&g, plan, policy);
        let p = Point::new(37.517, 127.047);
        for _ in 0..3 {
            assert!(geo.lookup(p).unwrap().is_some()); // failures accumulate
        }
        assert_eq!(geo.breaker_state(), BreakerState::Open);
        // While open, lookups still answer (fallback) without dialing.
        let before = geo.primary().traffic().lookups;
        assert!(geo.lookup(p).unwrap().is_some());
        assert_eq!(geo.primary().traffic().lookups, before);
        assert!(geo.breaker_denials() > 0);
        let t = geo.traffic();
        assert_eq!(t.breaker_opens, 1);
        assert!(t.is_exact());
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let g = Gazetteer::load();
        let run = || {
            let plan = FaultPlan {
                drop_rate: 0.5,
                seed: 3,
                ..FaultPlan::default()
            };
            let policy = ResiliencePolicy {
                max_retries: 4,
                breaker_threshold: u32::MAX,
                ..ResiliencePolicy::default()
            };
            let geo = resilient(&g, plan, policy);
            for i in 0..40 {
                let p = Point::new(33.0 + f64::from(i) * 0.05, 126.0 + f64::from(i) * 0.05);
                let _ = geo.lookup(p);
            }
            (geo.backoff_ms(), geo.traffic().retries)
        };
        let (ms_a, retries_a) = run();
        let (ms_b, retries_b) = run();
        assert_eq!(ms_a, ms_b, "seeded jitter stream must reproduce exactly");
        assert_eq!(retries_a, retries_b);
        assert!(retries_a > 0);
        let cap = ResiliencePolicy::default().backoff_cap_ms;
        assert!(ms_a <= retries_a * cap, "every sleep is capped");
    }
}
