//! The Yahoo XML endpoint as a [`Geocoder`] backend.
//!
//! The paper's collection ran for months against a daily-quota API: when a
//! day's quota ran out, the crawl simply waited for the next day. This
//! wrapper models that — a real quota exhaustion rolls the endpoint over
//! to a new simulated day (counted in `quota_days`) and retries, so a long
//! experiment runs to completion while the metrics record how many "API
//! days" it would have cost. Spurious injected rate-limit faults are *not*
//! rolled over (the real quota is not actually spent); they propagate as
//! retryable errors for the resilient layer above to handle.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use stir_geoindex::Point;

use crate::error::GeocodeError;
use crate::location::LocationRecord;
use crate::yahoo::YahooPlaceFinder;

use super::{BackendTraffic, Geocoder};

/// Cap on consecutive same-call rollovers: a plan that injects rate-limit
/// faults on every attempt (or a zero quota) must not spin forever.
const MAX_ROLLOVERS_PER_CALL: u32 = 8;

/// A [`YahooPlaceFinder`] with daily-quota rollover, usable wherever a
/// [`Geocoder`] is expected.
pub struct YahooBackend<'g> {
    api: YahooPlaceFinder<'g>,
    /// Simulated API days consumed: 0 until the first lookup, then 1, then
    /// +1 per quota rollover.
    quota_days: AtomicU64,
    /// Serializes rollovers so racing threads don't each reset the day.
    rollover: Mutex<()>,
}

impl<'g> YahooBackend<'g> {
    /// Wraps an endpoint. The endpoint keeps its fault plan and deadline;
    /// this layer only adds day accounting.
    pub fn new(api: YahooPlaceFinder<'g>) -> Self {
        YahooBackend {
            api,
            quota_days: AtomicU64::new(0),
            rollover: Mutex::new(()),
        }
    }

    /// The wrapped endpoint.
    pub fn endpoint(&self) -> &YahooPlaceFinder<'g> {
        &self.api
    }

    /// Simulated API days consumed so far (0 if nothing was ever looked up).
    pub fn quota_days(&self) -> u64 {
        self.quota_days.load(Ordering::Relaxed)
    }

    /// Rolls the endpoint into a new simulated day if the quota really is
    /// spent. Returns whether a rollover (by us or a racing thread)
    /// happened, i.e. whether retrying is worthwhile.
    fn roll_over_if_spent(&self) -> bool {
        let _day = self.rollover.lock();
        // Re-check under the lock: a racing thread may have already rolled
        // the day over, in which case our quota slot is simply free again.
        if self.api.requests() >= self.api.daily_quota() {
            self.api.reset_quota();
            self.quota_days.fetch_add(1, Ordering::Relaxed);
        }
        true
    }
}

impl Geocoder for YahooBackend<'_> {
    fn lookup(&self, p: Point) -> Result<Option<LocationRecord>, GeocodeError> {
        // First traffic ever starts day 1.
        let _ = self
            .quota_days
            .compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed);
        let mut rollovers = 0;
        loop {
            match self.api.lookup(p) {
                Err(GeocodeError::QuotaExceeded(limit))
                    if self.api.requests() >= self.api.daily_quota() =>
                {
                    // Real exhaustion: the day's slots are gone. Roll over
                    // and retry — bounded, so a zero-quota endpoint errors
                    // out instead of spinning.
                    rollovers += 1;
                    if rollovers > MAX_ROLLOVERS_PER_CALL || !self.roll_over_if_spent() {
                        return Err(GeocodeError::QuotaExceeded(limit));
                    }
                }
                other => return other,
            }
        }
    }

    fn traffic(&self) -> BackendTraffic {
        let (calls, resolved, misses, errors) = self.api.call_outcomes();
        BackendTraffic {
            lookups: calls,
            resolved,
            misses,
            errors,
            cache_hits: self.api.geocoder_stats().cache_hits,
            quota_days: self.quota_days(),
            simulated_ms: self.api.simulated_ms(),
            ..BackendTraffic::default()
        }
    }

    fn name(&self) -> &'static str {
        "yahoo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gazetteer::Gazetteer;
    use crate::service::FaultPlan;

    #[test]
    fn no_traffic_consumes_no_quota_days() {
        let g = Gazetteer::load();
        let backend = YahooBackend::new(YahooPlaceFinder::with_limits(&g, 10, 0));
        assert_eq!(backend.quota_days(), 0);
    }

    #[test]
    fn rollover_spans_days_and_counts_them() {
        let g = Gazetteer::load();
        let backend = YahooBackend::new(YahooPlaceFinder::with_limits(&g, 3, 0));
        let p = Point::new(37.517, 127.047);
        for _ in 0..10 {
            assert!(backend.lookup(p).unwrap().is_some());
        }
        // 10 requests at 3/day: days 1..4 (3+3+3+1).
        assert_eq!(backend.quota_days(), 4);
        let t = backend.traffic();
        assert!(
            t.is_exact(),
            "identity must survive rollover retries: {t:?}"
        );
        assert_eq!(t.resolved, 10);
    }

    #[test]
    fn zero_quota_errors_out_instead_of_spinning() {
        let g = Gazetteer::load();
        let backend = YahooBackend::new(YahooPlaceFinder::with_limits(&g, 0, 0));
        assert_eq!(
            backend.lookup(Point::new(37.517, 127.047)),
            Err(GeocodeError::QuotaExceeded(0))
        );
    }

    #[test]
    fn spurious_quota_fault_propagates_without_rollover() {
        let g = Gazetteer::load();
        let plan = FaultPlan {
            quota_rate: 1.0,
            ..FaultPlan::default()
        };
        let api = YahooPlaceFinder::with_limits(&g, 10, 0).with_fault_plan(plan);
        let backend = YahooBackend::new(api);
        assert_eq!(
            backend.lookup(Point::new(37.517, 127.047)),
            Err(GeocodeError::QuotaExceeded(10))
        );
        // The injected 403 is not a real exhaustion: day 1 started, but no
        // rollover happened and no slot was burned.
        assert_eq!(backend.quota_days(), 1);
        assert_eq!(backend.endpoint().requests(), 0);
    }
}
