//! Reverse geocoding: GPS coordinates → [`LocationRecord`].
//!
//! Wraps [`Gazetteer::resolve_point`] with a quantizing cache and hit
//! statistics. The paper issued one Yahoo API call per GPS tweet; at 2xx,xxx
//! GPS tweets a cache over quantized coordinates is what any practitioner
//! would have put in front of the quota-limited API, and the benchmarks
//! measure exactly that effect.
//!
//! Built for parallel callers: the cache is **sharded** — N independent
//! `Mutex<HashMap>` shards, N a power of two derived from the machine's
//! parallelism, shard picked by key hash — so concurrent lookups touch
//! disjoint locks and the hit path takes exactly one shard lock. The
//! traffic counters are plain atomics, so a lookup never takes a second
//! lock for bookkeeping and the counters stay exact under any interleaving
//! (each lookup increments `lookups` exactly once and exactly one of
//! `resolved`/`misses`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use stir_geoindex::Point;

use crate::district::DistrictId;
use crate::gazetteer::Gazetteer;
use crate::location::LocationRecord;

/// Counters describing a geocoder's traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReverseStats {
    /// Total lookups.
    pub lookups: u64,
    /// Lookups answered from the cache.
    pub cache_hits: u64,
    /// Lookups that resolved to a district.
    pub resolved: u64,
    /// Lookups outside the gazetteer's coverage.
    pub misses: u64,
}

impl ReverseStats {
    /// Cache hit ratio in `[0, 1]`; zero when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.lookups as f64
        }
    }
}

/// Quantization for the cache key: ~0.0005° ≈ 50 m, far below district size.
const QUANT: f64 = 2000.0;

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct Key(i32, i32);

/// Quantizes with `floor`, not truncation: `as i32` rounds toward zero,
/// which made the cells straddling 0° double-width and aliased negative
/// coordinates with positive ones (lat −0.0001 and +0.0001 shared a cell).
fn key_of(p: Point) -> Key {
    Key(
        (p.lat * QUANT).floor() as i32,
        (p.lon * QUANT).floor() as i32,
    )
}

/// The quantized cell of a point, exposed for the service layer's stale
/// cache so every cache in the crate agrees on cell boundaries.
pub(crate) fn quantize(p: Point) -> (i32, i32) {
    let k = key_of(p);
    (k.0, k.1)
}

/// Shard index for a quantized cell, exposed alongside [`quantize`] so the
/// service layer's stale cache reuses the same SplitMix64 placement.
pub(crate) fn cell_shard(cell: (i32, i32), mask: usize) -> usize {
    shard_of(Key(cell.0, cell.1), mask)
}

/// One cache shard: quantized cell → resolved district (or a negative
/// answer, which is cached too).
type Shard = Mutex<HashMap<Key, Option<DistrictId>>>;

/// SplitMix64 finalizer over both key halves; shard index is the low bits.
fn shard_of(key: Key, mask: usize) -> usize {
    let mut z = ((key.0 as u32 as u64) << 32) | key.1 as u32 as u64;
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) as usize & mask
}

/// Shard count sized for the machine: next power of two ≥ 4 × threads.
pub(crate) fn default_shard_count() -> usize {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    (threads * 4).next_power_of_two()
}

/// A caching reverse geocoder over a [`Gazetteer`].
///
/// Thread-safe and contention-free by construction: lookups take `&self`;
/// the cache is split into hash-picked shards so concurrent callers almost
/// always lock disjoint mutexes, and the stats are atomics (no stats lock).
pub struct ReverseGeocoder<'g> {
    gazetteer: &'g Gazetteer,
    shards: Box<[Shard]>,
    shard_mask: usize,
    /// Per-shard entry budget; a full shard is cleared wholesale — cheap,
    /// and the working set re-warms immediately.
    shard_capacity: usize,
    lookups: AtomicU64,
    cache_hits: AtomicU64,
    resolved: AtomicU64,
    misses: AtomicU64,
}

impl<'g> ReverseGeocoder<'g> {
    /// Starts a [`GeocoderBuilder`](crate::service::GeocoderBuilder) — the
    /// construction surface for this geocoder and every service-layer
    /// backend (`.capacity(..)`, `.shards(..)`, `.backend(..)`).
    pub fn builder(gazetteer: &'g Gazetteer) -> crate::service::GeocoderBuilder<'g> {
        crate::service::GeocoderBuilder::new(gazetteer)
    }

    /// The real constructor behind the builder and the deprecated shims.
    pub(crate) fn assemble(gazetteer: &'g Gazetteer, capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        ReverseGeocoder {
            gazetteer,
            shards: (0..shards)
                .map(|_| Mutex::new(HashMap::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            shard_mask: shards - 1,
            shard_capacity: (capacity / shards).max(1),
            lookups: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            resolved: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A geocoder with the default cache capacity (1M quantized cells).
    #[deprecated(
        since = "0.1.0",
        note = "use `ReverseGeocoder::builder(gazetteer).build_reverse()`"
    )]
    pub fn new(gazetteer: &'g Gazetteer) -> Self {
        Self::builder(gazetteer).build_reverse()
    }

    /// A geocoder with an explicit total cache capacity, split across the
    /// default shard count.
    #[deprecated(
        since = "0.1.0",
        note = "use `ReverseGeocoder::builder(gazetteer).capacity(..).build_reverse()`"
    )]
    pub fn with_capacity(gazetteer: &'g Gazetteer, capacity: usize) -> Self {
        Self::builder(gazetteer).capacity(capacity).build_reverse()
    }

    /// A geocoder with explicit capacity and shard count (rounded up to a
    /// power of two). `shards = 1` reproduces the old single-lock layout,
    /// which the contention benchmark uses as its baseline.
    #[deprecated(
        since = "0.1.0",
        note = "use `ReverseGeocoder::builder(gazetteer).capacity(..).shards(..).build_reverse()`"
    )]
    pub fn with_shards(gazetteer: &'g Gazetteer, capacity: usize, shards: usize) -> Self {
        Self::builder(gazetteer)
            .capacity(capacity)
            .shards(shards)
            .build_reverse()
    }

    /// Number of cache shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Resolves a point to a district id, or `None` outside coverage.
    pub fn resolve(&self, p: Point) -> Option<DistrictId> {
        let key = key_of(p);
        let shard = &self.shards[shard_of(key, self.shard_mask)];
        {
            let cache = shard.lock();
            if let Some(&hit) = cache.get(&key) {
                drop(cache);
                self.lookups.fetch_add(1, Ordering::Relaxed);
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                self.count_outcome(hit);
                return hit;
            }
        }
        // Miss: resolve outside the lock so a slow polygon walk never
        // blocks other lookups that hash to the same shard. Two threads
        // racing on the same fresh cell both resolve and insert the same
        // value — idempotent, and cheaper than holding the lock.
        let resolved = self.gazetteer.resolve_point(p);
        {
            let mut cache = shard.lock();
            if cache.len() >= self.shard_capacity {
                cache.clear();
            }
            cache.insert(key, resolved);
        }
        self.lookups.fetch_add(1, Ordering::Relaxed);
        self.count_outcome(resolved);
        resolved
    }

    /// Columnar batch resolve: one call per *batch* where [`Self::resolve`]
    /// is one call per point. `lats`/`lons` are parallel columns (the fused
    /// engine's morsel layout); each answer is handed to `sink` in input
    /// order. Answers are exactly those of calling `resolve`
    /// point-at-a-time. Two batch-only savings: the traffic counters
    /// accumulate in locals and flush with one `fetch_add` per counter per
    /// batch, and a batch-local direct-mapped L1 memo short-circuits
    /// repeated cells — real fix streams revisit the same districts
    /// constantly, and the shared shards charge a lock plus a SipHash probe
    /// per point where the L1 costs an index and a compare. An L1 hit
    /// counts as a cache hit: the entry was installed from the shard path,
    /// so the shard holds the same cell (a concurrent capacity clear can
    /// perturb that accounting, never an answer).
    pub fn resolve_cols(
        &self,
        lats: &[f64],
        lons: &[f64],
        mut sink: impl FnMut(Option<DistrictId>),
    ) {
        debug_assert_eq!(lats.len(), lons.len());
        const L1_SLOTS: usize = 512;
        const L1_MASK: usize = L1_SLOTS - 1;
        let mut l1: [Option<(Key, Option<DistrictId>)>; L1_SLOTS] = [None; L1_SLOTS];
        let mut lookups = 0u64;
        let mut hits = 0u64;
        let mut res = 0u64;
        let mut miss = 0u64;
        for (&lat, &lon) in lats.iter().zip(lons) {
            let p = Point::new(lat, lon);
            let key = key_of(p);
            let slot = shard_of(key, L1_MASK);
            let outcome = if let Some((k, v)) = l1[slot].filter(|&(k, _)| k == key) {
                debug_assert_eq!(k, key);
                hits += 1;
                v
            } else {
                let shard = &self.shards[shard_of(key, self.shard_mask)];
                let cached = { shard.lock().get(&key).copied() };
                let resolved = match cached {
                    Some(hit) => {
                        hits += 1;
                        hit
                    }
                    None => {
                        // Same discipline as `resolve`: the polygon walk
                        // runs outside the shard lock.
                        let resolved = self.gazetteer.resolve_point(p);
                        let mut cache = shard.lock();
                        if cache.len() >= self.shard_capacity {
                            cache.clear();
                        }
                        cache.insert(key, resolved);
                        resolved
                    }
                };
                l1[slot] = Some((key, resolved));
                resolved
            };
            lookups += 1;
            if outcome.is_some() {
                res += 1;
            } else {
                miss += 1;
            }
            sink(outcome);
        }
        if lookups > 0 {
            self.lookups.fetch_add(lookups, Ordering::Relaxed);
            self.cache_hits.fetch_add(hits, Ordering::Relaxed);
            self.resolved.fetch_add(res, Ordering::Relaxed);
            self.misses.fetch_add(miss, Ordering::Relaxed);
        }
    }

    fn count_outcome(&self, outcome: Option<DistrictId>) {
        if outcome.is_some() {
            self.resolved.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Resolves a point to the full record the Yahoo mock would return.
    pub fn lookup(&self, p: Point) -> Option<LocationRecord> {
        let id = self.resolve(p)?;
        let d = self.gazetteer.district(id);
        Some(LocationRecord::for_district(
            d.province,
            d.name_en,
            self.gazetteer.town_label(id, p),
            id,
        ))
    }

    /// Resolves a batch, preserving order; unresolvable points yield `None`.
    pub fn lookup_batch(&self, points: &[Point]) -> Vec<Option<LocationRecord>> {
        points.iter().map(|&p| self.lookup(p)).collect()
    }

    /// Snapshot of the traffic counters.
    ///
    /// After all concurrent lookups have finished (e.g. past a thread
    /// join), the snapshot is exact: `lookups == cache_hits + gazetteer
    /// calls` and `lookups == resolved + misses`, guarantees the old
    /// two-mutex design could not make across counters.
    pub fn stats(&self) -> ReverseStats {
        ReverseStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            resolved: self.resolved.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// The underlying gazetteer.
    pub fn gazetteer(&self) -> &'g Gazetteer {
        self.gazetteer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_caches_repeat_lookups() {
        let g = Gazetteer::load();
        let geo = ReverseGeocoder::builder(&g).build_reverse();
        let p = Point::new(37.517, 127.047); // Gangnam-gu centroid
        let a = geo.resolve(p);
        let b = geo.resolve(p);
        assert_eq!(a, b);
        assert!(a.is_some());
        let s = geo.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.resolved, 2);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lookup_returns_full_record() {
        let g = Gazetteer::load();
        let geo = ReverseGeocoder::builder(&g).build_reverse();
        let rec = geo.lookup(Point::new(37.517, 127.047)).unwrap();
        assert_eq!(rec.state, "Seoul");
        assert_eq!(rec.county, "Gangnam-gu");
        assert_eq!(rec.country, "South Korea");
        assert!(rec.town.ends_with("-dong"));
        assert!(rec.district.is_some());
    }

    #[test]
    fn out_of_coverage_is_cached_miss() {
        let g = Gazetteer::load();
        let geo = ReverseGeocoder::builder(&g).build_reverse();
        let tokyo = Point::new(35.68, 139.69);
        assert!(geo.lookup(tokyo).is_none());
        assert!(geo.lookup(tokyo).is_none());
        let s = geo.stats();
        assert_eq!(s.misses, 2);
        assert_eq!(s.cache_hits, 1);
    }

    #[test]
    fn tiny_cache_evicts_but_stays_correct() {
        let g = Gazetteer::load();
        let geo = ReverseGeocoder::builder(&g).capacity(2).build_reverse();
        let pts = [
            Point::new(37.517, 127.047),
            Point::new(35.106, 129.032),
            Point::new(35.869, 128.606),
            Point::new(37.517, 127.047),
        ];
        let ids: Vec<_> = pts.iter().map(|&p| geo.resolve(p)).collect();
        assert_eq!(ids[0], ids[3]);
        assert!(ids.iter().all(|i| i.is_some()));
    }

    #[test]
    fn batch_preserves_order_and_gaps() {
        let g = Gazetteer::load();
        let geo = ReverseGeocoder::builder(&g).build_reverse();
        let out = geo.lookup_batch(&[
            Point::new(37.517, 127.047),
            Point::new(35.68, 139.69),
            Point::new(33.50, 126.53),
        ]);
        assert_eq!(out.len(), 3);
        assert!(out[0].is_some());
        assert!(out[1].is_none());
        assert_eq!(out[2].as_ref().unwrap().state, "Jeju-do");
    }

    #[test]
    fn quantization_floors_across_zero() {
        // Regression: `as i32` truncates toward zero, so −0.0001° and
        // +0.0001° used to share cell 0 and the cell straddling 0° was
        // double-width. With floor they land in adjacent, distinct cells.
        let step = 1.0 / QUANT;
        let north_east = Point::new(step / 4.0, step / 4.0);
        let south_west = Point::new(-step / 4.0, -step / 4.0);
        assert_ne!(key_of(north_east), key_of(south_west));
        assert_eq!(key_of(south_west), Key(-1, -1));
        assert_eq!(key_of(north_east), Key(0, 0));
        // Southern/western hemisphere points quantize consistently: one
        // step apart in coordinates → one step apart in key space, with no
        // double-width cell at the origin.
        let sydney = Point::new(-33.8688, 151.2093);
        let step_south = Point::new(-33.8688 - step, 151.2093);
        assert_eq!(key_of(sydney).0 - 1, key_of(step_south).0);
        let valparaiso = Point::new(-33.0458, -71.6197);
        let step_west = Point::new(-33.0458, -71.6197 - step);
        assert_eq!(key_of(valparaiso).1 - 1, key_of(step_west).1);
    }

    #[test]
    fn near_zero_cells_are_distinct_cache_entries() {
        // Behavior-level regression for the same bug: the two sides of the
        // equator/prime-meridian must not share one cached answer.
        let g = Gazetteer::load();
        let geo = ReverseGeocoder::builder(&g).build_reverse();
        let a = Point::new(0.0001, 0.0001);
        let b = Point::new(-0.0001, -0.0001);
        assert_eq!(geo.resolve(a), g.resolve_point(a));
        assert_eq!(geo.resolve(b), g.resolve_point(b));
        let s = geo.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(
            s.cache_hits, 0,
            "distinct quantized cells must both miss the cache"
        );
    }

    #[test]
    fn resolve_cols_matches_point_at_a_time_with_exact_counters() {
        let g = Gazetteer::load();
        let by_point = ReverseGeocoder::builder(&g).build_reverse();
        let by_cols = ReverseGeocoder::builder(&g).build_reverse();
        let pts = [
            (37.517, 127.047), // Gangnam-gu
            (35.68, 139.69),   // Tokyo — miss (negative answer cached)
            (37.517, 127.047), // cache hit
            (35.68, 139.69),   // cached negative — hit
            (33.50, 126.53),   // Jeju
        ];
        let lats: Vec<f64> = pts.iter().map(|&(lat, _)| lat).collect();
        let lons: Vec<f64> = pts.iter().map(|&(_, lon)| lon).collect();
        let reference: Vec<_> = pts
            .iter()
            .map(|&(lat, lon)| by_point.resolve(Point::new(lat, lon)))
            .collect();
        let mut got = Vec::new();
        by_cols.resolve_cols(&lats, &lons, |id| got.push(id));
        assert_eq!(got, reference);
        assert_eq!(by_cols.stats(), by_point.stats());
        assert_eq!(by_cols.stats().lookups, 5);
        assert_eq!(by_cols.stats().cache_hits, 2);
        // An empty batch touches nothing.
        by_cols.resolve_cols(&[], &[], |_| panic!("empty batch must not emit"));
        assert_eq!(by_cols.stats().lookups, 5);
    }

    #[test]
    fn shard_count_is_power_of_two_and_overridable() {
        let g = Gazetteer::load();
        let geo = ReverseGeocoder::builder(&g).build_reverse();
        assert!(geo.shard_count().is_power_of_two());
        let single = ReverseGeocoder::builder(&g).shards(1).build_reverse();
        assert_eq!(single.shard_count(), 1);
        let many = ReverseGeocoder::builder(&g).shards(9).build_reverse();
        assert_eq!(many.shard_count(), 16);
    }

    /// The deprecated positional constructors must keep building the exact
    /// same layouts the builder does — seed code compiled against them
    /// still works.
    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_builder() {
        let g = Gazetteer::load();
        let p = Point::new(37.517, 127.047);
        let via_new = ReverseGeocoder::new(&g);
        let via_builder = ReverseGeocoder::builder(&g).build_reverse();
        assert_eq!(via_new.shard_count(), via_builder.shard_count());
        assert_eq!(via_new.resolve(p), via_builder.resolve(p));
        let shimmed = ReverseGeocoder::with_shards(&g, 1 << 10, 4);
        let built = ReverseGeocoder::builder(&g)
            .capacity(1 << 10)
            .shards(4)
            .build_reverse();
        assert_eq!(shimmed.shard_count(), built.shard_count());
        assert_eq!(
            ReverseGeocoder::with_capacity(&g, 64).resolve(p),
            ReverseGeocoder::builder(&g)
                .capacity(64)
                .build_reverse()
                .resolve(p)
        );
    }

    #[test]
    fn sharded_and_single_shard_agree() {
        let g = Gazetteer::load();
        let sharded = ReverseGeocoder::builder(&g).shards(16).build_reverse();
        let single = ReverseGeocoder::builder(&g).shards(1).build_reverse();
        for i in 0..500 {
            let p = Point::new(33.0 + (i as f64) * 0.012, 124.5 + (i as f64) * 0.013);
            assert_eq!(sharded.resolve(p), single.resolve(p), "point {p}");
        }
        assert_eq!(sharded.stats(), single.stats());
    }
}
