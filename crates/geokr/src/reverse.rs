//! Reverse geocoding: GPS coordinates → [`LocationRecord`].
//!
//! Wraps [`Gazetteer::resolve_point`] with a quantizing LRU-ish cache and hit
//! statistics. The paper issued one Yahoo API call per GPS tweet; at 2xx,xxx
//! GPS tweets a cache over quantized coordinates is what any practitioner
//! would have put in front of the quota-limited API, and the benchmarks
//! measure exactly that effect.

use std::collections::HashMap;

use parking_lot::Mutex;
use stir_geoindex::Point;

use crate::district::DistrictId;
use crate::gazetteer::Gazetteer;
use crate::location::LocationRecord;

/// Counters describing a geocoder's traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReverseStats {
    /// Total lookups.
    pub lookups: u64,
    /// Lookups answered from the cache.
    pub cache_hits: u64,
    /// Lookups that resolved to a district.
    pub resolved: u64,
    /// Lookups outside the gazetteer's coverage.
    pub misses: u64,
}

impl ReverseStats {
    /// Cache hit ratio in `[0, 1]`; zero when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.lookups as f64
        }
    }
}

/// Quantization for the cache key: ~0.0005° ≈ 50 m, far below district size.
const QUANT: f64 = 2000.0;

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Key(i32, i32);

fn key_of(p: Point) -> Key {
    Key((p.lat * QUANT) as i32, (p.lon * QUANT) as i32)
}

/// A caching reverse geocoder over a [`Gazetteer`].
///
/// Thread-safe: lookups take `&self`; the cache and counters sit behind a
/// mutex (the resolve path itself is read-only on the gazetteer).
pub struct ReverseGeocoder<'g> {
    gazetteer: &'g Gazetteer,
    cache: Mutex<HashMap<Key, Option<DistrictId>>>,
    stats: Mutex<ReverseStats>,
    capacity: usize,
}

impl<'g> ReverseGeocoder<'g> {
    /// A geocoder with the default cache capacity (1M quantized cells).
    pub fn new(gazetteer: &'g Gazetteer) -> Self {
        Self::with_capacity(gazetteer, 1 << 20)
    }

    /// A geocoder with an explicit cache capacity. When the cache fills it is
    /// cleared wholesale — cheap, and the working set re-warms immediately.
    pub fn with_capacity(gazetteer: &'g Gazetteer, capacity: usize) -> Self {
        ReverseGeocoder {
            gazetteer,
            cache: Mutex::new(HashMap::new()),
            stats: Mutex::new(ReverseStats::default()),
            capacity: capacity.max(1),
        }
    }

    /// Resolves a point to a district id, or `None` outside coverage.
    pub fn resolve(&self, p: Point) -> Option<DistrictId> {
        let key = key_of(p);
        {
            let cache = self.cache.lock();
            if let Some(&hit) = cache.get(&key) {
                let mut s = self.stats.lock();
                s.lookups += 1;
                s.cache_hits += 1;
                if hit.is_some() {
                    s.resolved += 1;
                } else {
                    s.misses += 1;
                }
                return hit;
            }
        }
        let resolved = self.gazetteer.resolve_point(p);
        {
            let mut cache = self.cache.lock();
            if cache.len() >= self.capacity {
                cache.clear();
            }
            cache.insert(key, resolved);
        }
        let mut s = self.stats.lock();
        s.lookups += 1;
        if resolved.is_some() {
            s.resolved += 1;
        } else {
            s.misses += 1;
        }
        resolved
    }

    /// Resolves a point to the full record the Yahoo mock would return.
    pub fn lookup(&self, p: Point) -> Option<LocationRecord> {
        let id = self.resolve(p)?;
        let d = self.gazetteer.district(id);
        Some(LocationRecord::for_district(
            d.province,
            d.name_en,
            self.gazetteer.town_label(id, p),
            id,
        ))
    }

    /// Resolves a batch, preserving order; unresolvable points yield `None`.
    pub fn lookup_batch(&self, points: &[Point]) -> Vec<Option<LocationRecord>> {
        points.iter().map(|&p| self.lookup(p)).collect()
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> ReverseStats {
        *self.stats.lock()
    }

    /// The underlying gazetteer.
    pub fn gazetteer(&self) -> &'g Gazetteer {
        self.gazetteer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_caches_repeat_lookups() {
        let g = Gazetteer::load();
        let geo = ReverseGeocoder::new(&g);
        let p = Point::new(37.517, 127.047); // Gangnam-gu centroid
        let a = geo.resolve(p);
        let b = geo.resolve(p);
        assert_eq!(a, b);
        assert!(a.is_some());
        let s = geo.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.resolved, 2);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lookup_returns_full_record() {
        let g = Gazetteer::load();
        let geo = ReverseGeocoder::new(&g);
        let rec = geo.lookup(Point::new(37.517, 127.047)).unwrap();
        assert_eq!(rec.state, "Seoul");
        assert_eq!(rec.county, "Gangnam-gu");
        assert_eq!(rec.country, "South Korea");
        assert!(rec.town.ends_with("-dong"));
        assert!(rec.district.is_some());
    }

    #[test]
    fn out_of_coverage_is_cached_miss() {
        let g = Gazetteer::load();
        let geo = ReverseGeocoder::new(&g);
        let tokyo = Point::new(35.68, 139.69);
        assert!(geo.lookup(tokyo).is_none());
        assert!(geo.lookup(tokyo).is_none());
        let s = geo.stats();
        assert_eq!(s.misses, 2);
        assert_eq!(s.cache_hits, 1);
    }

    #[test]
    fn tiny_cache_evicts_but_stays_correct() {
        let g = Gazetteer::load();
        let geo = ReverseGeocoder::with_capacity(&g, 2);
        let pts = [
            Point::new(37.517, 127.047),
            Point::new(35.106, 129.032),
            Point::new(35.869, 128.606),
            Point::new(37.517, 127.047),
        ];
        let ids: Vec<_> = pts.iter().map(|&p| geo.resolve(p)).collect();
        assert_eq!(ids[0], ids[3]);
        assert!(ids.iter().all(|i| i.is_some()));
    }

    #[test]
    fn batch_preserves_order_and_gaps() {
        let g = Gazetteer::load();
        let geo = ReverseGeocoder::new(&g);
        let out = geo.lookup_batch(&[
            Point::new(37.517, 127.047),
            Point::new(35.68, 139.69),
            Point::new(33.50, 126.53),
        ]);
        assert_eq!(out.len(), 3);
        assert!(out[0].is_some());
        assert!(out[1].is_none());
        assert_eq!(out[2].as_ref().unwrap().state, "Jeju-do");
    }
}
