//! The in-memory gazetteer: district table, name indexes, centroid R-tree
//! and synthetic footprints.

use std::collections::HashMap;

use stir_geoindex::{BBox, Point, Polygon, RTree};

use crate::data;
use crate::district::{District, DistrictId, Province};

/// Bounding box generously covering South Korea; points outside are rejected
/// by the reverse geocoder before any index lookup.
pub const KOREA_BBOX: BBox = BBox {
    min_lat: 32.5,
    min_lon: 124.0,
    max_lat: 39.5,
    max_lon: 132.0,
};

/// The gazetteer: every 2011-era district with lookup structures.
///
/// Build once with [`Gazetteer::load`] (cheap — a few hundred rows) and share
/// by reference; all methods take `&self`.
///
/// ```
/// use stir_geoindex::Point;
/// use stir_geokr::Gazetteer;
///
/// let gazetteer = Gazetteer::load();
/// assert_eq!(gazetteer.len(), 229);
/// let id = gazetteer.resolve_point(Point::new(37.517, 127.047)).unwrap();
/// assert_eq!(gazetteer.district(id).name_en, "Gangnam-gu");
/// ```
pub struct Gazetteer {
    districts: Vec<District>,
    footprints: Vec<Polygon>,
    /// lowercase romanized name (with suffix) → district ids
    by_name_en: HashMap<String, Vec<DistrictId>>,
    /// Korean name → district ids
    by_name_ko: HashMap<String, Vec<DistrictId>>,
    /// centroid index; item order == district id order
    centroid_tree: RTree<Point>,
    /// cumulative population weights for weighted sampling
    cumulative_pop: Vec<f64>,
    total_pop: f64,
}

impl Gazetteer {
    /// Builds the gazetteer from the static 2011 table.
    pub fn load() -> Self {
        let mut districts = Vec::with_capacity(data::DISTRICTS.len());
        let mut footprints = Vec::with_capacity(data::DISTRICTS.len());
        let mut by_name_en: HashMap<String, Vec<DistrictId>> = HashMap::new();
        let mut by_name_ko: HashMap<String, Vec<DistrictId>> = HashMap::new();
        let mut cumulative_pop = Vec::with_capacity(data::DISTRICTS.len());
        let mut total_pop = 0.0;

        for (i, &(province, name_en, name_ko, kind, lat, lon, pop_k, area)) in
            data::DISTRICTS.iter().enumerate()
        {
            let id = DistrictId(i as u16);
            let centroid = Point::new(lat, lon);
            let d = District {
                id,
                name_en,
                name_ko,
                province,
                kind,
                centroid,
                population_k: pop_k,
                area_km2: area,
            };
            // A rounded polygon footprint with the district's area; vertex
            // count varies with the id so footprints are not all identical.
            let sides = 9 + (i % 7);
            let footprint = Polygon::regular(centroid, d.footprint_radius_km(), sides)
                .expect("regular polygon parameters are valid");
            by_name_en
                .entry(name_en.to_ascii_lowercase())
                .or_default()
                .push(id);
            by_name_ko.entry(name_ko.to_string()).or_default().push(id);
            total_pop += pop_k as f64;
            cumulative_pop.push(total_pop);
            districts.push(d);
            footprints.push(footprint);
        }

        let centroid_tree = RTree::bulk_load(districts.iter().map(|d| d.centroid).collect());
        Gazetteer {
            districts,
            footprints,
            by_name_en,
            by_name_ko,
            centroid_tree,
            cumulative_pop,
            total_pop,
        }
    }

    /// Number of districts (229 for the 2011 table).
    pub fn len(&self) -> usize {
        self.districts.len()
    }

    /// Always false for a loaded gazetteer.
    pub fn is_empty(&self) -> bool {
        self.districts.is_empty()
    }

    /// District by id.
    ///
    /// # Panics
    /// Panics if the id does not belong to this gazetteer.
    pub fn district(&self, id: DistrictId) -> &District {
        &self.districts[id.0 as usize]
    }

    /// All districts in id order.
    pub fn districts(&self) -> &[District] {
        &self.districts
    }

    /// The synthetic polygon footprint of a district.
    pub fn footprint(&self, id: DistrictId) -> &Polygon {
        &self.footprints[id.0 as usize]
    }

    /// Districts belonging to `province`.
    pub fn districts_in(&self, province: Province) -> impl Iterator<Item = &District> {
        self.districts
            .iter()
            .filter(move |d| d.province == province)
    }

    /// Exact lookup by romanized name (case-insensitive, suffix included).
    /// Several districts may share a name across provinces (every large city
    /// has a "Jung-gu"), hence the slice result.
    pub fn find_by_name_en(&self, name: &str) -> &[DistrictId] {
        self.by_name_en
            .get(&name.to_ascii_lowercase())
            .map_or(&[], |v| v.as_slice())
    }

    /// Exact lookup by Korean name.
    pub fn find_by_name_ko(&self, name: &str) -> &[DistrictId] {
        self.by_name_ko.get(name).map_or(&[], |v| v.as_slice())
    }

    /// The district uniquely keyed by `(state, county)` — the pair a
    /// [`crate::LocationRecord`] carries (province English name + district
    /// romanized name). District names repeat across provinces (every large
    /// city has a "Jung-gu") but are unique within one, so the pair
    /// identifies at most one district. Used to reattach the district id to
    /// records parsed back from the Yahoo XML, which does not carry ids.
    pub fn find_district(&self, state: &str, county: &str) -> Option<DistrictId> {
        self.find_by_name_en(county)
            .iter()
            .copied()
            .find(|&id| self.district(id).province.name_en() == state)
    }

    /// The district whose centroid is nearest to `p`, together with the
    /// distance in km, or `None` when `p` is outside [`KOREA_BBOX`].
    pub fn nearest_district(&self, p: Point) -> Option<(DistrictId, f64)> {
        if !KOREA_BBOX.contains(p) {
            return None;
        }
        let (idx, _) = self.centroid_tree.nearest(p)?;
        let d = &self.districts[idx];
        Some((d.id, p.haversine_km(d.centroid)))
    }

    /// The `k` districts whose centroids are nearest to `p`, nearest-first.
    /// Unlike [`Gazetteer::nearest_district`] this does not reject points
    /// outside Korea — callers use it for "districts around here" queries.
    pub fn nearest_districts(&self, p: Point, k: usize) -> Vec<DistrictId> {
        self.centroid_tree
            .nearest_k(p, k)
            .into_iter()
            .map(|(idx, _)| self.districts[idx].id)
            .collect()
    }

    /// Districts adjacent to `id`: footprints whose circles overlap (with a
    /// 15% slack for the polygonal approximation). Does not include `id`.
    pub fn adjacent_districts(&self, id: DistrictId) -> Vec<DistrictId> {
        let d = self.district(id);
        self.centroid_tree
            .nearest_k(d.centroid, 16)
            .into_iter()
            .map(|(idx, _)| &self.districts[idx])
            .filter(|other| {
                other.id != id
                    && d.centroid.haversine_km(other.centroid)
                        <= 1.15 * (d.footprint_radius_km() + other.footprint_radius_km())
            })
            .map(|other| other.id)
            .collect()
    }

    /// Resolves `p` to a district: polygon-containment first (checking the
    /// nearest few footprints), falling back to the nearest centroid. This is
    /// the semantic the mock Yahoo endpoint exposes.
    pub fn resolve_point(&self, p: Point) -> Option<DistrictId> {
        if !KOREA_BBOX.contains(p) {
            return None;
        }
        let candidates = self.centroid_tree.nearest_k(p, 4);
        for &(idx, _) in &candidates {
            if self.footprints[idx].contains(p) {
                return Some(self.districts[idx].id);
            }
        }
        candidates.first().map(|&(idx, _)| self.districts[idx].id)
    }

    /// Maps a uniform draw in `[0, 1)` to a district, weighted by 2011
    /// population. Deterministic: the caller supplies the randomness.
    pub fn weighted_district(&self, u: f64) -> DistrictId {
        let target = u.clamp(0.0, 0.999_999_999) * self.total_pop;
        let idx = self.cumulative_pop.partition_point(|&c| c <= target);
        self.districts[idx.min(self.districts.len() - 1)].id
    }

    /// Draws a point inside the district's footprint, driven by the caller's
    /// uniform source.
    pub fn sample_point_in<F: FnMut() -> f64>(&self, id: DistrictId, uniform01: F) -> Point {
        self.footprints[id.0 as usize].sample_interior(uniform01)
    }

    /// Like [`Gazetteer::sample_point_in`], but contracts the draw toward
    /// the district centroid by `scale` in `(0, 1]`. People cluster around
    /// district centres (stations, downtowns), and the contraction keeps
    /// synthetic GPS fixes away from footprint borders where neighbouring
    /// districts overlap — matching how rarely a real fix geocodes into the
    /// adjacent district.
    pub fn sample_point_in_scaled<F: FnMut() -> f64>(
        &self,
        id: DistrictId,
        scale: f64,
        uniform01: F,
    ) -> Point {
        let p = self.footprints[id.0 as usize].sample_interior(uniform01);
        let c = self.districts[id.0 as usize].centroid;
        let s = scale.clamp(0.0, 1.0);
        Point::new(c.lat + (p.lat - c.lat) * s, c.lon + (p.lon - c.lon) * s)
    }

    /// Synthesizes a deterministic neighbourhood ("town") label for a point
    /// inside a district — fidelity filler for the `<town>` element of the
    /// Yahoo response; the analysis never reads it.
    pub fn town_label(&self, id: DistrictId, p: Point) -> String {
        let d = self.district(id);
        // Quantize the point so nearby coordinates share a town.
        let qx = (p.lat * 50.0).floor() as i64;
        let qy = (p.lon * 50.0).floor() as i64;
        let h = (qx.wrapping_mul(0x9E37_79B9) ^ qy.wrapping_mul(0x85EB_CA6B)).unsigned_abs();
        format!("{} {}-dong", d.stem_en(), h % 26 + 1)
    }
}

impl Default for Gazetteer {
    fn default() -> Self {
        Self::load()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_has_full_table() {
        let g = Gazetteer::load();
        assert_eq!(g.len(), 229);
        assert!(!g.is_empty());
    }

    #[test]
    fn find_by_name_handles_ambiguity() {
        let g = Gazetteer::load();
        // "Jung-gu" exists in Seoul, Busan, Daegu, Incheon, Daejeon, Ulsan.
        let hits = g.find_by_name_en("Jung-gu");
        assert_eq!(hits.len(), 6, "Jung-gu provinces: {hits:?}");
        let unique = g.find_by_name_en("Yangcheon-gu");
        assert_eq!(unique.len(), 1);
        assert_eq!(g.district(unique[0]).province, Province::Seoul);
        assert!(g.find_by_name_en("Atlantis-gu").is_empty());
    }

    #[test]
    fn find_by_name_is_case_insensitive() {
        let g = Gazetteer::load();
        assert_eq!(
            g.find_by_name_en("GANGNAM-GU"),
            g.find_by_name_en("gangnam-gu")
        );
        assert_eq!(g.find_by_name_en("Gangnam-gu").len(), 1);
    }

    #[test]
    fn find_district_disambiguates_by_state() {
        let g = Gazetteer::load();
        let seoul = g.find_district("Seoul", "Jung-gu").unwrap();
        let busan = g.find_district("Busan", "Jung-gu").unwrap();
        assert_ne!(seoul, busan);
        assert_eq!(g.district(seoul).province, Province::Seoul);
        assert_eq!(g.district(busan).province, Province::Busan);
        assert!(g.find_district("Seoul", "Haeundae-gu").is_none());
        assert!(g.find_district("Atlantis", "Jung-gu").is_none());
        // Round trip: every district is found by its own (state, county).
        for d in g.districts() {
            assert_eq!(g.find_district(d.province.name_en(), d.name_en), Some(d.id));
        }
    }

    #[test]
    fn korean_name_lookup() {
        let g = Gazetteer::load();
        let hits = g.find_by_name_ko("강남구");
        assert_eq!(hits.len(), 1);
        assert_eq!(g.district(hits[0]).name_en, "Gangnam-gu");
    }

    #[test]
    fn centroid_resolves_to_own_district() {
        let g = Gazetteer::load();
        for d in g.districts() {
            let resolved = g.resolve_point(d.centroid).unwrap();
            assert_eq!(
                resolved,
                d.id,
                "centroid of {} resolved to {}",
                d.name_en,
                g.district(resolved).name_en
            );
        }
    }

    #[test]
    fn nearest_district_rejects_points_outside_korea() {
        let g = Gazetteer::load();
        assert!(g.nearest_district(Point::new(48.85, 2.35)).is_none()); // Paris
        assert!(g.nearest_district(Point::new(35.68, 139.69)).is_none()); // Tokyo
        assert!(g.nearest_district(Point::new(37.5663, 126.9779)).is_some()); // Seoul
    }

    #[test]
    fn seoul_city_hall_is_in_jung_gu() {
        let g = Gazetteer::load();
        let id = g.resolve_point(Point::new(37.5663, 126.9779)).unwrap();
        let d = g.district(id);
        assert_eq!(d.province, Province::Seoul);
        // City hall sits on the Jung-gu/Jongno-gu boundary; either is correct
        // at the fidelity of synthetic footprints.
        assert!(
            d.name_en == "Jung-gu" || d.name_en == "Jongno-gu",
            "resolved to {}",
            d.name_en
        );
    }

    #[test]
    fn weighted_district_covers_distribution_edges() {
        let g = Gazetteer::load();
        let first = g.weighted_district(0.0);
        assert_eq!(first, DistrictId(0));
        let last = g.weighted_district(0.999_999_999);
        assert_eq!(last.0 as usize, g.len() - 1);
        // Monotone: larger u never maps to a smaller id.
        let mut prev = 0u16;
        for i in 0..100 {
            let id = g.weighted_district(i as f64 / 100.0);
            assert!(id.0 >= prev);
            prev = id.0;
        }
    }

    #[test]
    fn weighted_district_prefers_populous_districts() {
        let g = Gazetteer::load();
        // Sample on a fine uniform lattice and count Seoul vs Jeju draws.
        let mut seoul = 0;
        let mut jeju = 0;
        for i in 0..10_000 {
            let d = g.district(g.weighted_district(i as f64 / 10_000.0));
            match d.province {
                Province::Seoul => seoul += 1,
                Province::Jeju => jeju += 1,
                _ => {}
            }
        }
        assert!(seoul > 10 * jeju, "seoul {seoul} vs jeju {jeju}");
    }

    #[test]
    fn sample_point_resolves_to_sampled_district_mostly() {
        let g = Gazetteer::load();
        let mut state = 0.7317f64;
        let mut next = move || {
            state = (state * 9301.0 + 0.49297).fract();
            state
        };
        let mut hits = 0;
        let total = 500;
        for i in 0..total {
            let id = DistrictId((i % g.len()) as u16);
            let p = g.sample_point_in(id, &mut next);
            if g.resolve_point(p) == Some(id) {
                hits += 1;
            }
        }
        // Footprints overlap near borders, so a perfect score is impossible;
        // the bulk must resolve back. This mirrors real GPS/geocoder noise.
        assert!(hits * 10 >= total * 7, "only {hits}/{total} resolved back");
    }

    #[test]
    fn town_label_is_deterministic_and_prefixed() {
        let g = Gazetteer::load();
        let id = g.find_by_name_en("Gangnam-gu")[0];
        let p = Point::new(37.50, 127.04);
        assert_eq!(g.town_label(id, p), g.town_label(id, p));
        assert!(g.town_label(id, p).starts_with("Gangnam "));
        assert!(g.town_label(id, p).ends_with("-dong"));
    }

    #[test]
    fn adjacency_is_symmetric_and_local() {
        let g = Gazetteer::load();
        let yangcheon = g.find_by_name_en("Yangcheon-gu")[0];
        let adjacent = g.adjacent_districts(yangcheon);
        assert!(!adjacent.is_empty(), "urban gu must have neighbours");
        assert!(!adjacent.contains(&yangcheon));
        for n in &adjacent {
            // Symmetry.
            assert!(
                g.adjacent_districts(*n).contains(&yangcheon),
                "{} not symmetric with Yangcheon-gu",
                g.district(*n).name_en
            );
            // Locality: neighbours are within ~25 km for Seoul gu.
            let d = g
                .district(yangcheon)
                .centroid
                .haversine_km(g.district(*n).centroid);
            assert!(d < 25.0, "{} is {d} km away", g.district(*n).name_en);
        }
        // Jeju island districts are never adjacent to the mainland.
        let jeju = g.find_by_name_en("Jeju-si")[0];
        for n in g.adjacent_districts(jeju) {
            assert_eq!(g.district(n).province, Province::Jeju);
        }
    }

    #[test]
    fn districts_in_province_counts() {
        let g = Gazetteer::load();
        assert_eq!(g.districts_in(Province::Seoul).count(), 25);
        assert_eq!(g.districts_in(Province::Jeju).count(), 2);
    }
}
