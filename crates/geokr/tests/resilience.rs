//! Integration tests for the resilient service layer: retry budgets are
//! hard ceilings, breaker behaviour is a pure function of the seeded fault
//! schedule, concurrent hammering produces exactly-counted fallbacks, and
//! the Yahoo endpoint's atomic quota admits precisely its daily limit.

use proptest::prelude::*;
use stir_geoindex::Point;
use stir_geokr::service::{BreakerState, YahooBackend};
use stir_geokr::yahoo::YahooPlaceFinder;
use stir_geokr::{
    FaultPlan, Gazetteer, Geocoder, ResiliencePolicy, ResilientGeocoder, ReverseGeocoder,
};

fn gaz() -> &'static Gazetteer {
    use std::sync::OnceLock;
    static GAZ: OnceLock<Gazetteer> = OnceLock::new();
    GAZ.get_or_init(Gazetteer::load)
}

/// A resilient stack over a faulted Yahoo endpoint with unlimited quota and
/// zero base latency — the shape the pipeline builds, but with the concrete
/// type exposed so tests can read the breaker trace.
fn resilient(faults: FaultPlan, policy: ResiliencePolicy) -> ResilientGeocoder<'static> {
    let api = YahooPlaceFinder::with_limits(gaz(), u64::MAX, 0)
        .with_fault_plan(faults)
        .with_deadline(policy.deadline_ms);
    let fallback = ReverseGeocoder::builder(gaz()).build_reverse();
    ResilientGeocoder::new(Box::new(YahooBackend::new(api)), fallback, policy)
}

/// Same mixed workload as the concurrency suite: repeated hot cells, a
/// spread of fresh cells, and out-of-coverage points.
fn mixed_points() -> Vec<Point> {
    let mut pts = Vec::new();
    for i in 0..400 {
        match i % 4 {
            0 => pts.push(Point::new(37.517, 127.047)), // Gangnam-gu
            1 => pts.push(Point::new(37.517, 126.866)), // Yangcheon-gu
            2 => pts.push(Point::new(
                34.2 + (i as f64) * 0.009,
                126.6 + (i as f64) * 0.007,
            )),
            _ => pts.push(if i % 8 == 3 {
                Point::new(35.68, 139.69) // Tokyo
            } else {
                Point::new(20.0, 170.0) // open Pacific
            }),
        }
    }
    pts
}

#[test]
fn breaker_trace_is_a_pure_function_of_the_seeded_schedule() {
    let faults = FaultPlan::parse("drop:0.45,seed:7").unwrap();
    let policy = ResiliencePolicy {
        max_retries: 2,
        breaker_threshold: 3,
        breaker_cooldown: 4,
        ..ResiliencePolicy::default()
    };
    let run = || {
        let geo = resilient(faults, policy);
        for &p in &mixed_points() {
            let _ = geo.lookup(p);
        }
        (geo.breaker_trace(), geo.traffic(), geo.breaker_state())
    };
    let (trace_a, traffic_a, state_a) = run();
    let (trace_b, traffic_b, state_b) = run();
    assert!(
        !trace_a.is_empty(),
        "a 45% drop rate against threshold 3 must trip the breaker"
    );
    assert_eq!(trace_a, trace_b, "trace must be schedule-determined");
    assert_eq!(traffic_a, traffic_b, "traffic must be schedule-determined");
    assert_eq!(state_a, state_b);
    assert!(traffic_a.breaker_opens > 0);
    assert!(traffic_a.is_exact(), "{traffic_a:?}");
    // The trace starts with the first trip, and every recorded state is a
    // real transition (no consecutive duplicates).
    assert_eq!(trace_a[0].1, BreakerState::Open);
    for w in trace_a.windows(2) {
        assert_ne!(w[0].1, w[1].1, "consecutive duplicate state in trace");
    }
}

#[test]
fn eight_thread_hammer_counts_fallbacks_exactly() {
    // A total outage with the breaker disarmed makes every counter
    // interleaving-independent: each lookup burns exactly 1 + max_retries
    // attempts and then degrades to the local gazetteer.
    const THREADS: usize = 8;
    let faults = FaultPlan::parse("drop:1.0").unwrap();
    let policy = ResiliencePolicy {
        max_retries: 2,
        breaker_threshold: u32::MAX,
        ..ResiliencePolicy::default()
    };
    let geo = resilient(faults, policy);
    let points = mixed_points();
    let locally_resolvable = points
        .iter()
        .filter(|&&p| gaz().resolve_point(p).is_some())
        .count() as u64;

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let geo = &geo;
            let points = &points;
            s.spawn(move || {
                for i in 0..points.len() {
                    let _ = geo.lookup(points[(i + t * 53) % points.len()]);
                }
            });
        }
    });

    let total = (THREADS * points.len()) as u64;
    let t = geo.traffic();
    assert!(t.is_exact(), "{t:?}");
    assert_eq!(t.lookups, total);
    assert_eq!(t.resolved, 0, "nothing gets through a 100% drop schedule");
    assert_eq!(t.retries, total * 2);
    assert_eq!(t.errors, total * 3);
    assert_eq!(
        t.fallbacks,
        total * locally_resolvable / points.len() as u64
    );
    assert_eq!(t.misses, total - t.fallbacks);
    assert_eq!(t.local_fallbacks, total, "no stale entries exist to serve");
    assert_eq!(t.stale_fallbacks, 0);
    assert_eq!(t.breaker_opens, 0);
    assert_eq!(geo.breaker_denials(), 0);
    assert_eq!(geo.budget_denials(), 0);
}

#[test]
fn concurrent_quota_admits_exactly_the_daily_limit() {
    // 8 threads race 400 lookups against a quota of 100: the atomic slot
    // reservation must admit exactly 100, whatever the interleaving.
    const THREADS: usize = 8;
    const PER_THREAD: usize = 50;
    const QUOTA: u64 = 100;
    let api = YahooPlaceFinder::with_limits(gaz(), QUOTA, 0);
    let p = Point::new(37.517, 127.047); // Gangnam-gu: always resolvable
    let ok: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let api = &api;
                s.spawn(move || (0..PER_THREAD).filter(|_| api.lookup(p).is_ok()).count() as u64)
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    assert_eq!(ok, QUOTA, "exactly the quota must be admitted");
    assert_eq!(api.requests(), QUOTA, "no slot leaked or double-burned");
    assert_eq!(api.attempts(), (THREADS * PER_THREAD) as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// However noisy the schedule, the primary is dialled at most
    /// `1 + max_retries` times per lookup, the traffic partition stays
    /// exact, and the caller always gets an answer (never an error).
    #[test]
    fn retries_never_exceed_budget(
        drop_rate in 0.0f64..0.8,
        malformed_rate in 0.0f64..0.15,
        max_retries in 0u32..4,
        seed in 0u64..1_000,
    ) {
        let faults = FaultPlan {
            drop_rate,
            malformed_rate,
            seed,
            ..FaultPlan::default()
        };
        let policy = ResiliencePolicy { max_retries, ..ResiliencePolicy::default() };
        let geo = resilient(faults, policy);
        let points = [
            Point::new(37.517, 127.047), // Seoul, repeated: stale-cache path
            Point::new(35.16, 129.06),   // Busan
            Point::new(20.0, 170.0),     // open Pacific: miss path
        ];
        for i in 0..40 {
            prop_assert!(geo.lookup(points[i % points.len()]).is_ok());
        }
        let t = geo.traffic();
        prop_assert!(t.is_exact(), "{:?}", t);
        prop_assert_eq!(t.lookups, 40);
        let dials = geo.primary().traffic().lookups;
        let ceiling = 40 * u64::from(max_retries) + 40;
        prop_assert!(dials <= ceiling, "{} dials > ceiling {}", dials, ceiling);
        // Every lookup runs dials + denials iterations, one of which is the
        // initial try; the rest were preceded by a retry decision.
        let iterations = dials + geo.breaker_denials() + geo.budget_denials();
        prop_assert_eq!(t.retries, iterations - 40);
        prop_assert!(t.errors >= t.retries);
    }
}
