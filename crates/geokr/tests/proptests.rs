//! Property tests: the geocoders and the XML layer must be total, mutually
//! consistent, and monotone where claimed.

use proptest::prelude::*;
use stir_geoindex::Point;
use stir_geokr::yahoo::{parse_response, render_response, YahooPlaceFinder};
use stir_geokr::{Gazetteer, LocationRecord, ReverseGeocoder};

fn gaz() -> &'static Gazetteer {
    use std::sync::OnceLock;
    static GAZ: OnceLock<Gazetteer> = OnceLock::new();
    GAZ.get_or_init(Gazetteer::load)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn resolve_point_is_total(lat in -89.0f64..89.0, lon in -179.0f64..179.0) {
        let _ = gaz().resolve_point(Point::new(lat, lon));
    }

    #[test]
    fn korea_points_always_resolve(lat in 34.0f64..38.0, lon in 126.5f64..129.0) {
        // Anywhere on the peninsula interior resolves to *some* district.
        prop_assert!(gaz().resolve_point(Point::new(lat, lon)).is_some());
    }

    #[test]
    fn reverse_geocoder_agrees_with_gazetteer(lat in 33.0f64..39.0, lon in 124.5f64..131.0) {
        let g = gaz();
        let geo = ReverseGeocoder::builder(g).build_reverse();
        let p = Point::new(lat, lon);
        prop_assert_eq!(geo.resolve(p), g.resolve_point(p));
        // Twice: the cached answer must be identical.
        prop_assert_eq!(geo.resolve(p), g.resolve_point(p));
    }

    #[test]
    fn yahoo_xml_roundtrip_any_point(lat in -89.0f64..89.0, lon in -179.0f64..179.0) {
        let g = gaz();
        let api = YahooPlaceFinder::with_limits(g, u64::MAX, 0);
        let p = Point::new(lat, lon);
        let direct = ReverseGeocoder::builder(g).build_reverse().lookup(p).map(|r| (r.state, r.county));
        let via_xml = api.lookup(p).unwrap().map(|r| (r.state, r.county));
        prop_assert_eq!(direct, via_xml);
    }

    #[test]
    fn parse_response_never_panics(xml in "\\PC{0,200}") {
        let _ = parse_response(&xml);
    }

    #[test]
    fn render_parse_roundtrip_arbitrary_names(
        country in "\\PC{0,20}",
        state in "\\PC{0,20}",
        county in "\\PC{0,20}",
        town in "\\PC{0,20}",
        lat in -89.0f64..89.0,
        lon in -179.0f64..179.0,
    ) {
        // Whatever the names contain, escape+parse must round-trip the
        // *trimmed* values (the parser trims element text).
        let rec = LocationRecord {
            country: country.trim().to_string(),
            state: state.trim().to_string(),
            county: county.trim().to_string(),
            town: town.trim().to_string(),
            district: None,
        };
        let xml = render_response(Point::new(lat, lon), Some(&rec));
        let back = parse_response(&xml).unwrap().unwrap();
        prop_assert_eq!(back.country, rec.country);
        prop_assert_eq!(back.state, rec.state);
        prop_assert_eq!(back.county, rec.county);
        prop_assert_eq!(back.town, rec.town);
    }

    #[test]
    fn weighted_district_is_monotone(a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let g = gaz();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(g.weighted_district(lo).0 <= g.weighted_district(hi).0);
    }

    #[test]
    fn sampled_points_stay_in_korea(idx in 0u16..229, s1 in 0.0f64..1.0, s2 in 0.0f64..1.0) {
        let g = gaz();
        let id = stir_geokr::DistrictId(idx);
        let mut seq = [s1, s2, (s1 + s2).fract(), (s1 * 7.3).fract()].into_iter().cycle();
        let p = g.sample_point_in(id, move || seq.next().unwrap());
        // Every footprint sample resolves (it is inside Korea's bbox).
        prop_assert!(g.resolve_point(p).is_some(), "{p} from {}", g.district(id).name_en);
    }
}
