//! Concurrency tests for the sharded reverse geocoder: many threads
//! hammering one instance must produce exactly the serial answers and
//! exactly-counted statistics. These are the guarantees the pipeline's
//! dynamic scheduler builds on.

use proptest::prelude::*;
use stir_geoindex::Point;
use stir_geokr::{Gazetteer, ReverseGeocoder};

fn gaz() -> &'static Gazetteer {
    use std::sync::OnceLock;
    static GAZ: OnceLock<Gazetteer> = OnceLock::new();
    GAZ.get_or_init(Gazetteer::load)
}

/// A deterministic mixed workload: in-coverage points that repeat (cache
/// hits), a spread of distinct cells (misses), and out-of-coverage points
/// (cached negative answers).
fn mixed_points() -> Vec<Point> {
    let mut pts = Vec::new();
    for i in 0..400 {
        match i % 4 {
            // Repeats: two Seoul districts, hammered over and over.
            0 => pts.push(Point::new(37.517, 127.047)), // Gangnam-gu
            1 => pts.push(Point::new(37.517, 126.866)), // Yangcheon-gu
            // Spread: a walk across the peninsula, one fresh cell each.
            2 => pts.push(Point::new(
                34.2 + (i as f64) * 0.009,
                126.6 + (i as f64) * 0.007,
            )),
            // Out of coverage: Tokyo and the open Pacific.
            _ => pts.push(if i % 8 == 3 {
                Point::new(35.68, 139.69)
            } else {
                Point::new(20.0, 170.0)
            }),
        }
    }
    pts
}

#[test]
fn eight_threads_agree_with_serial_and_count_exactly() {
    const THREADS: usize = 8;
    let g = gaz();
    let points = mixed_points();

    // Ground truth: the uncached gazetteer, point by point.
    let expected: Vec<_> = points.iter().map(|&p| g.resolve_point(p)).collect();

    let geo = ReverseGeocoder::builder(g).build_reverse();
    let results: Vec<Vec<_>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let geo = &geo;
                let points = &points;
                s.spawn(move || {
                    // Each thread walks the whole list from a different
                    // offset so shards are contended in every order.
                    (0..points.len())
                        .map(|i| geo.resolve(points[(i + t * 53) % points.len()]))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (t, thread_results) in results.iter().enumerate() {
        for (i, &got) in thread_results.iter().enumerate() {
            let want = expected[(i + t * 53) % points.len()];
            assert_eq!(got, want, "thread {t}, call {i}");
        }
    }

    // Counters are exact, not approximate: every call counted once, and
    // the outcome split covers all of them.
    let s = geo.stats();
    let total_calls = (THREADS * points.len()) as u64;
    assert_eq!(s.lookups, total_calls);
    assert_eq!(s.resolved + s.misses, total_calls);
    // Two hot cells hammered 800 times guarantee a dominant hit ratio even
    // though first-touch racing makes the exact hit count nondeterministic.
    assert!(
        s.cache_hits > total_calls / 2,
        "hit ratio implausibly low: {s:?}"
    );
    assert!(s.cache_hits < total_calls, "some first touch must miss");
}

#[test]
fn concurrent_stats_match_serial_outcome_split() {
    // The resolved/miss split is workload-determined (unlike cache_hits),
    // so the concurrent run must reproduce the serial split exactly.
    let g = gaz();
    let points = mixed_points();
    let serial = ReverseGeocoder::builder(g).build_reverse();
    for &p in &points {
        serial.resolve(p);
    }
    let serial_stats = serial.stats();

    let geo = ReverseGeocoder::builder(g).build_reverse();
    std::thread::scope(|s| {
        for chunk in points.chunks(points.len() / 8) {
            let geo = &geo;
            s.spawn(move || {
                for &p in chunk {
                    geo.resolve(p);
                }
            });
        }
    });
    let concurrent_stats = geo.stats();
    assert_eq!(concurrent_stats.lookups, serial_stats.lookups);
    assert_eq!(concurrent_stats.resolved, serial_stats.resolved);
    assert_eq!(concurrent_stats.misses, serial_stats.misses);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For arbitrary points and shard counts, the sharded cached resolve is
    /// indistinguishable from the uncached gazetteer — per call, twice (the
    /// second call exercises the hit path).
    #[test]
    fn sharded_resolve_equals_uncached_gazetteer(
        lat in 33.0f64..39.0,
        lon in 124.5f64..131.0,
        shards in 1usize..64,
    ) {
        let g = gaz();
        let geo = ReverseGeocoder::builder(g).capacity(1 << 16).shards(shards).build_reverse();
        let p = Point::new(lat, lon);
        prop_assert_eq!(geo.resolve(p), g.resolve_point(p));
        prop_assert_eq!(geo.resolve(p), g.resolve_point(p));
        let s = geo.stats();
        prop_assert_eq!(s.lookups, 2);
        prop_assert_eq!(s.cache_hits, 1);
    }
}
