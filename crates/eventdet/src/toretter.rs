//! The Toretter baseline end to end: watch a term, detect the burst,
//! gather the reports around it, estimate the event location.

use stir_geoindex::Point;

use crate::estimator::{LocationEstimator, Observation};
use crate::trend::{BurstDetector, TermSeries};
use crate::weighted::{ObservationBuilder, RawReport};

/// One tweet as the detector consumes it.
#[derive(Clone, Debug)]
pub struct StreamTweet {
    /// Author.
    pub user: u64,
    /// Time (window seconds).
    pub timestamp: u64,
    /// Text.
    pub text: String,
    /// GPS fix if present.
    pub gps: Option<Point>,
}

/// A raised alert.
#[derive(Clone, Debug)]
pub struct ToretterAlert {
    /// Index of the bursting bin.
    pub bin: usize,
    /// Start of the bursting bin (window seconds) — the alert time.
    pub alert_time: u64,
    /// Estimated event location.
    pub estimate: Point,
    /// Observations that fed the estimate.
    pub n_observations: usize,
}

/// The detector: term matching, burst detection, location estimation.
pub struct Toretter<'e> {
    /// The watched term (lowercased match, like "earthquake").
    pub term: String,
    /// Time bin width for the trend series.
    pub bin_secs: u64,
    /// Burst detector parameters.
    pub detector: BurstDetector,
    /// How many bins after the burst to keep collecting reports.
    pub collect_bins: usize,
    /// The location estimator to apply.
    pub estimator: &'e dyn LocationEstimator,
}

impl<'e> Toretter<'e> {
    /// A detector for `term` with 5-minute bins.
    pub fn new(term: &str, estimator: &'e dyn LocationEstimator) -> Self {
        Toretter {
            term: term.to_ascii_lowercase(),
            bin_secs: 300,
            detector: BurstDetector::default(),
            collect_bins: 6,
            estimator,
        }
    }

    /// Calibrates the burst detector's absolute floor from Sakaki et al.'s
    /// probabilistic sensor model: a bin can only alarm once it holds
    /// enough reports that `1 − p_false^n` crosses the model's threshold.
    pub fn with_sensor_model(mut self, model: crate::sensor::SensorModel) -> Self {
        self.detector.min_count = model.sensors_needed().clamp(1, u64::MAX / 2);
        self
    }

    /// Scans the whole stream and returns every distinct burst as an
    /// alert, enforcing a cooldown of `collect_bins` bins between alerts so
    /// one event's tail does not re-trigger.
    pub fn detect_all(
        &self,
        stream: &[StreamTweet],
        builder: &ObservationBuilder<'_>,
    ) -> Vec<ToretterAlert> {
        let mut series = TermSeries::new(self.bin_secs);
        let mut matching: Vec<&StreamTweet> = Vec::new();
        for t in stream {
            if t.text.to_ascii_lowercase().contains(&self.term) {
                series.record(t.timestamp);
                matching.push(t);
            }
        }
        let mut alerts = Vec::new();
        let mut next_allowed_bin = 0usize;
        for bin in self.detector.detect(&series) {
            if bin < next_allowed_bin {
                continue;
            }
            next_allowed_bin = bin + 1 + self.collect_bins;
            let window_start = bin as u64 * self.bin_secs;
            let window_end = (bin + 1 + self.collect_bins) as u64 * self.bin_secs;
            let reports: Vec<RawReport> = matching
                .iter()
                .filter(|t| t.timestamp >= window_start && t.timestamp < window_end)
                .map(|t| RawReport {
                    user: t.user,
                    timestamp: t.timestamp,
                    gps: t.gps,
                })
                .collect();
            let observations: Vec<Observation> = builder.build(&reports);
            if let Some(estimate) = self.estimator.estimate(&observations) {
                alerts.push(ToretterAlert {
                    bin,
                    alert_time: window_start,
                    estimate,
                    n_observations: observations.len(),
                });
            }
        }
        alerts
    }

    /// Scans the stream; on the first burst of the term, estimates the
    /// event location from the matching reports in the burst window,
    /// weighting them through `builder`.
    pub fn detect(
        &self,
        stream: &[StreamTweet],
        builder: &ObservationBuilder<'_>,
    ) -> Option<ToretterAlert> {
        let mut series = TermSeries::new(self.bin_secs);
        let mut matching: Vec<&StreamTweet> = Vec::new();
        for t in stream {
            if t.text.to_ascii_lowercase().contains(&self.term) {
                series.record(t.timestamp);
                matching.push(t);
            }
        }
        let bin = self.detector.first_burst(&series)?;
        let window_start = bin as u64 * self.bin_secs;
        let window_end = (bin + 1 + self.collect_bins) as u64 * self.bin_secs;

        let reports: Vec<RawReport> = matching
            .iter()
            .filter(|t| t.timestamp >= window_start && t.timestamp < window_end)
            .map(|t| RawReport {
                user: t.user,
                timestamp: t.timestamp,
                gps: t.gps,
            })
            .collect();
        let observations: Vec<Observation> = builder.build(&reports);
        let estimate = self.estimator.estimate(&observations)?;
        Some(ToretterAlert {
            bin,
            alert_time: window_start,
            estimate,
            n_observations: observations.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::MeanEstimator;
    use std::collections::HashMap;
    use stir_core::ReliabilityWeights;
    use stir_geokr::Gazetteer;

    fn gaz() -> &'static Gazetteer {
        Box::leak(Box::new(Gazetteer::load()))
    }

    fn quiet_then_burst(g: &Gazetteer) -> Vec<StreamTweet> {
        let mut stream = Vec::new();
        // Background: one "earthquake movie" mention per 20 min.
        for i in 0..40u64 {
            stream.push(StreamTweet {
                user: 1000 + i,
                timestamp: i * 1200,
                text: "watching an earthquake movie".into(),
                gps: None,
            });
        }
        // Burst: 30 reports with GPS around Gangnam in one 5-min bin.
        let gangnam = g.find_by_name_en("Gangnam-gu")[0];
        let c = g.district(gangnam).centroid;
        for i in 0..30u64 {
            stream.push(StreamTweet {
                user: i,
                timestamp: 48_000 + i * 9,
                text: "earthquake!! shaking here".into(),
                gps: Some(Point::new(c.lat + (i as f64 - 15.0) * 1e-3, c.lon)),
            });
        }
        stream.sort_by_key(|t| t.timestamp);
        stream
    }

    fn empty_builder(g: &'static Gazetteer) -> ObservationBuilder<'static> {
        ObservationBuilder::with_weights(
            g,
            ReliabilityWeights::uniform(),
            HashMap::new(),
            HashMap::new(),
        )
    }

    #[test]
    fn burst_detected_and_located() {
        let g = gaz();
        let stream = quiet_then_burst(g);
        let est = MeanEstimator;
        let toretter = Toretter::new("earthquake", &est);
        let alert = toretter.detect(&stream, &empty_builder(g)).expect("alert");
        assert_eq!(alert.bin, 160); // 48000 / 300
        assert!(alert.n_observations >= 30);
        let gangnam = g.district(g.find_by_name_en("Gangnam-gu")[0]).centroid;
        assert!(
            gangnam.haversine_km(alert.estimate) < 5.0,
            "estimate {} km off",
            gangnam.haversine_km(alert.estimate)
        );
    }

    #[test]
    fn no_burst_no_alert() {
        let g = gaz();
        let stream: Vec<StreamTweet> = (0..40u64)
            .map(|i| StreamTweet {
                user: i,
                timestamp: i * 1200,
                text: "quiet day at the office".into(),
                gps: None,
            })
            .collect();
        let est = MeanEstimator;
        let toretter = Toretter::new("earthquake", &est);
        assert!(toretter.detect(&stream, &empty_builder(g)).is_none());
    }

    #[test]
    fn detect_all_separates_two_events_with_cooldown() {
        let g = gaz();
        let mut stream = quiet_then_burst(g);
        // A second burst two hours later, around Mapo-gu.
        let mapo = g.district(g.find_by_name_en("Mapo-gu")[0]).centroid;
        for i in 0..30u64 {
            stream.push(StreamTweet {
                user: 500 + i,
                timestamp: 56_000 + i * 9,
                text: "another earthquake!! shaking again".into(),
                gps: Some(Point::new(mapo.lat + (i as f64 - 15.0) * 1e-3, mapo.lon)),
            });
        }
        stream.sort_by_key(|t| t.timestamp);
        let est = MeanEstimator;
        let toretter = Toretter::new("earthquake", &est);
        let alerts = toretter.detect_all(&stream, &empty_builder(g));
        assert_eq!(alerts.len(), 2, "two separate events must yield two alerts");
        assert_eq!(alerts[0].bin, 160);
        assert_eq!(alerts[1].bin, 56_000 / 300);
        // Each alert localizes its own event.
        let gangnam = g.district(g.find_by_name_en("Gangnam-gu")[0]).centroid;
        assert!(gangnam.haversine_km(alerts[0].estimate) < 5.0);
        assert!(mapo.haversine_km(alerts[1].estimate) < 5.0);
    }

    #[test]
    fn detect_all_cooldown_merges_adjacent_bins() {
        let g = gaz();
        // One long burst spanning three bins must produce one alert.
        let gangnam = g.district(g.find_by_name_en("Gangnam-gu")[0]).centroid;
        let mut stream = quiet_then_burst(g);
        for i in 0..60u64 {
            stream.push(StreamTweet {
                user: 700 + i,
                timestamp: 48_300 + i * 9, // the following bin
                text: "earthquake still shaking".into(),
                gps: Some(gangnam),
            });
        }
        stream.sort_by_key(|t| t.timestamp);
        let est = MeanEstimator;
        let alerts = Toretter::new("earthquake", &est).detect_all(&stream, &empty_builder(g));
        assert_eq!(
            alerts.len(),
            1,
            "continuation bins must not re-alert: {alerts:?}"
        );
    }

    #[test]
    fn sensor_model_raises_the_alarm_floor() {
        let g = gaz();
        let stream = quiet_then_burst(g);
        let est = MeanEstimator;
        // A paranoid model demanding ~40+ concurrent sensors suppresses the
        // 30-report burst; the default model (5 sensors) alarms.
        let strict =
            Toretter::new("earthquake", &est).with_sensor_model(crate::sensor::SensorModel {
                p_false: 0.9,
                threshold: 0.99,
            });
        assert!(strict.detect(&stream, &empty_builder(g)).is_none());
        let default = Toretter::new("earthquake", &est)
            .with_sensor_model(crate::sensor::SensorModel::default());
        assert!(default.detect(&stream, &empty_builder(g)).is_some());
    }

    #[test]
    fn alert_time_is_fast() {
        // Toretter's claim: the alert beats official announcements. Our
        // alert time is the burst bin start — within one bin of the event.
        let g = gaz();
        let stream = quiet_then_burst(g);
        let est = MeanEstimator;
        let alert = Toretter::new("earthquake", &est)
            .detect(&stream, &empty_builder(g))
            .unwrap();
        assert!(alert.alert_time.abs_diff(48_000) <= 300);
    }
}
