//! Online (streaming) burst detection.
//!
//! Toretter's selling point is speed: "the alert of the system was far
//! faster than the rapid broadcast of announcement of Japan Meteorological
//! Agency". The batch detector in [`crate::toretter`] only alerts after
//! scanning the whole stream; this one consumes tweets as they arrive and
//! raises the alarm *mid-bin*, the moment the current bin's count crosses
//! the threshold over the trailing baseline.

use stir_geoindex::Point;

use crate::trend::BurstDetector;
use crate::weighted::RawReport;

/// A streaming alert.
#[derive(Clone, Debug)]
pub struct OnlineAlert {
    /// Time of the tweet that tripped the threshold.
    pub triggered_at: u64,
    /// The bursting bin index.
    pub bin: usize,
    /// Term-matching reports collected so far (ready for an estimator via
    /// [`crate::ObservationBuilder`]).
    pub reports: Vec<RawReport>,
}

/// Streaming detector state for one term.
pub struct OnlineToretter {
    term: String,
    bin_secs: u64,
    detector: BurstDetector,
    /// Completed-bin counts.
    bins: Vec<u64>,
    /// Index of the bin currently filling.
    current_bin: usize,
    /// Count within the current bin.
    current_count: u64,
    /// Matching reports in the recent window (bounded).
    reports: Vec<RawReport>,
    /// How many recent bins of reports to keep buffered.
    report_window_bins: usize,
    alerted: bool,
}

impl OnlineToretter {
    /// A streaming detector for `term` with 5-minute bins.
    pub fn new(term: &str) -> Self {
        OnlineToretter {
            term: term.to_ascii_lowercase(),
            bin_secs: 300,
            detector: BurstDetector::default(),
            bins: Vec::new(),
            current_bin: 0,
            current_count: 0,
            reports: Vec::new(),
            report_window_bins: 8,
            alerted: false,
        }
    }

    /// Overrides the bin width (seconds).
    pub fn with_bin_secs(mut self, bin_secs: u64) -> Self {
        assert!(bin_secs > 0);
        self.bin_secs = bin_secs;
        self
    }

    /// Overrides the burst detector parameters.
    pub fn with_detector(mut self, detector: BurstDetector) -> Self {
        self.detector = detector;
        self
    }

    /// True once an alert has fired (the detector then ignores input).
    pub fn alerted(&self) -> bool {
        self.alerted
    }

    fn roll_to(&mut self, bin: usize) {
        while self.current_bin < bin {
            self.bins.push(self.current_count);
            self.current_count = 0;
            self.current_bin += 1;
        }
        // Evict reports older than the buffer window.
        let cutoff =
            (self.current_bin.saturating_sub(self.report_window_bins)) as u64 * self.bin_secs;
        self.reports.retain(|r| r.timestamp >= cutoff);
    }

    /// Feeds one tweet (timestamps must be non-decreasing). Returns an
    /// alert the moment the term's traffic bursts.
    pub fn push(
        &mut self,
        user: u64,
        timestamp: u64,
        text: &str,
        gps: Option<Point>,
    ) -> Option<OnlineAlert> {
        if self.alerted {
            return None;
        }
        let bin = (timestamp / self.bin_secs) as usize;
        debug_assert!(bin >= self.current_bin, "timestamps must be non-decreasing");
        if bin > self.current_bin {
            self.roll_to(bin);
        }
        if !text.to_ascii_lowercase().contains(&self.term) {
            return None;
        }
        self.current_count += 1;
        self.reports.push(RawReport {
            user,
            timestamp,
            gps,
        });

        // Threshold test: the current (partial!) bin against the trailing
        // baseline — crossing early is the whole point.
        if self.current_bin < self.detector.warmup_bins
            || self.current_count < self.detector.min_count
        {
            return None;
        }
        let start = self.bins.len().saturating_sub(self.detector.baseline_bins);
        let window = &self.bins[start..];
        let baseline = if window.is_empty() {
            0.0
        } else {
            window.iter().sum::<u64>() as f64 / window.len() as f64
        };
        let threshold = baseline + self.detector.z * baseline.sqrt().max(1.0);
        if (self.current_count as f64) > threshold {
            self.alerted = true;
            return Some(OnlineAlert {
                triggered_at: timestamp,
                bin: self.current_bin,
                reports: self.reports.clone(),
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_background(det: &mut OnlineToretter, upto_secs: u64) {
        // One off-topic tweet per minute plus a matching tweet every 20 min.
        let mut t = 0;
        while t < upto_secs {
            assert!(det.push(900 + t, t, "regular chatter", None).is_none());
            if t % 1200 == 0 {
                assert!(det
                    .push(901, t + 5, "earthquake movie night", None)
                    .is_none());
            }
            t += 60;
        }
    }

    #[test]
    fn alerts_mid_bin_on_burst() {
        let mut det = OnlineToretter::new("earthquake");
        feed_background(&mut det, 48_000);
        // Burst: reports every 5 seconds starting at t = 48_000.
        let mut alert = None;
        for i in 0..60u64 {
            let ts = 48_000 + i * 5;
            if let Some(a) = det.push(i, ts, "earthquake!! shaking", Some(Point::new(37.5, 127.0)))
            {
                alert = Some(a);
                break;
            }
        }
        let alert = alert.expect("burst must alert");
        // Mid-bin: well before the 300-second bin completes.
        assert!(
            alert.triggered_at < 48_000 + 300,
            "triggered at {}",
            alert.triggered_at
        );
        assert!(!alert.reports.is_empty());
        assert!(det.alerted());
    }

    #[test]
    fn no_alert_on_steady_traffic() {
        let mut det = OnlineToretter::new("earthquake");
        // Steady heavy traffic: ~12 matching tweets per bin throughout.
        for t in (0..86_400u64).step_by(25) {
            assert!(det
                .push(t, t, "earthquake drill earthquake drill", None)
                .is_none());
        }
    }

    #[test]
    fn online_beats_batch_latency() {
        // Build the same stream for both detectors.
        let mut stream: Vec<(u64, u64, String, Option<Point>)> = Vec::new();
        for t in (0..48_000u64).step_by(60) {
            stream.push((9_000 + t, t, "background".into(), None));
            if t % 1200 == 0 {
                stream.push((9_001, t + 5, "earthquake movie".into(), None));
            }
        }
        for i in 0..60u64 {
            stream.push((
                i,
                48_000 + i * 5,
                "earthquake!! here".into(),
                Some(Point::new(37.5, 127.0)),
            ));
        }
        stream.sort_by_key(|s| s.1);

        let mut online = OnlineToretter::new("earthquake");
        let mut online_alert_at = None;
        for (user, ts, text, gps) in &stream {
            if let Some(a) = online.push(*user, *ts, text, *gps) {
                online_alert_at = Some(a.triggered_at);
                break;
            }
        }
        let online_at = online_alert_at.expect("online alert");

        let batch_stream: Vec<crate::toretter::StreamTweet> = stream
            .iter()
            .map(|(user, ts, text, gps)| crate::toretter::StreamTweet {
                user: *user,
                timestamp: *ts,
                text: text.clone(),
                gps: *gps,
            })
            .collect();
        let est = crate::estimator::MeanEstimator;
        let batch = crate::toretter::Toretter::new("earthquake", &est);
        let g: &'static stir_geokr::Gazetteer = Box::leak(Box::new(stir_geokr::Gazetteer::load()));
        let builder = crate::weighted::ObservationBuilder::with_weights(
            g,
            stir_core::ReliabilityWeights::uniform(),
            Default::default(),
            Default::default(),
        );
        let batch_alert = batch.detect(&batch_stream, &builder).expect("batch alert");
        // The online detector fires no later than the batch bin start +
        // whatever fraction of the bin it needed; both identify the same
        // burst bin.
        assert_eq!(batch_alert.bin, (online_at / 300) as usize);
        assert!(online_at >= batch_alert.alert_time);
        assert!(online_at < batch_alert.alert_time + 300);
    }

    #[test]
    fn report_buffer_is_bounded() {
        let mut det = OnlineToretter::new("quake").with_bin_secs(60);
        // Sparse matches over many bins; buffer must not grow unboundedly.
        for t in (0..600_000u64).step_by(120) {
            det.push(1, t, "quake chatter", None);
        }
        assert!(det.reports.len() <= 2 * det.report_window_bins * 60 / 120 + 4);
    }
}
