//! Estimation-error evaluation: the E8 experiment harness comparing
//! unweighted vs reliability-weighted event-location estimation across
//! estimators.

use stir_geoindex::Point;

use crate::estimator::{LocationEstimator, Observation};

/// Great-circle error between the true and estimated locations, in km.
pub fn error_km(truth: Point, estimate: Point) -> f64 {
    truth.haversine_km(estimate)
}

/// One estimator's result on one observation set.
#[derive(Clone, Debug)]
pub struct EvalRow {
    /// Estimator name.
    pub estimator: &'static str,
    /// Estimate, if one was produced.
    pub estimate: Option<Point>,
    /// Error in km (`f64::INFINITY` when no estimate).
    pub error_km: f64,
}

/// Runs every estimator against the observations and scores against the
/// known truth.
pub fn evaluate(
    estimators: &[&dyn LocationEstimator],
    observations: &[Observation],
    truth: Point,
) -> Vec<EvalRow> {
    estimators
        .iter()
        .map(|e| {
            let estimate = e.estimate(observations);
            EvalRow {
                estimator: e.name(),
                estimate,
                error_km: estimate.map_or(f64::INFINITY, |p| error_km(truth, p)),
            }
        })
        .collect()
}

/// Mean of finite errors across repeated trials (`None` if every trial
/// failed).
pub fn mean_error(errors: &[f64]) -> Option<f64> {
    let finite: Vec<f64> = errors.iter().copied().filter(|e| e.is_finite()).collect();
    if finite.is_empty() {
        None
    } else {
        Some(finite.iter().sum::<f64>() / finite.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{MeanEstimator, MedianEstimator};

    #[test]
    fn error_km_is_haversine() {
        let a = Point::new(37.5663, 126.9779);
        let b = Point::new(35.1798, 129.0750);
        assert!((error_km(a, b) - a.haversine_km(b)).abs() < 1e-12);
        assert_eq!(error_km(a, a), 0.0);
    }

    #[test]
    fn evaluate_runs_all_estimators() {
        let obs = vec![
            Observation::trusted(Point::new(37.0, 127.0), 0),
            Observation::trusted(Point::new(37.2, 127.2), 1),
        ];
        let mean = MeanEstimator;
        let median = MedianEstimator;
        let rows = evaluate(&[&mean, &median], &obs, Point::new(37.1, 127.1));
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.error_km < 20.0));
        assert_eq!(rows[0].estimator, "weighted-mean");
    }

    #[test]
    fn evaluate_with_no_observations() {
        let mean = MeanEstimator;
        let rows = evaluate(&[&mean], &[], Point::new(37.0, 127.0));
        assert!(rows[0].estimate.is_none());
        assert!(rows[0].error_km.is_infinite());
    }

    #[test]
    fn mean_error_skips_failures() {
        assert_eq!(mean_error(&[2.0, 4.0, f64::INFINITY]), Some(3.0));
        assert_eq!(mean_error(&[f64::INFINITY]), None);
        assert_eq!(mean_error(&[]), None);
    }
}
