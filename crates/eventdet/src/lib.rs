//! # stir-eventdet — event detection systems and location estimation
//!
//! The paper positions itself as "a preliminary study for the event
//! detection system" and names two: **Twitris** (Nagarajan et al. — TF-IDF
//! summaries over time/space/theme) and **Toretter** (Sakaki et al. —
//! keyword trend detection with Kalman/particle-filter location
//! estimation). Its conclusion proposes using the Top-k reliability
//! analysis "to determine the weight factor for the location information"
//! in exactly these systems. This crate implements all of it:
//!
//! * [`tfidf`] / [`twitris`] — TF-IDF term scoring and spatio-temporal-
//!   thematic summaries (the Twitris baseline).
//! * [`trend`] — keyword burst detection over time bins (Toretter's
//!   temporal side); [`online`] — its streaming variant that alerts
//!   mid-bin, the latency the original system advertised.
//! * [`kalman`] / [`particle`] — the two location filters Toretter applies
//!   to the spatial attributes; [`sensor`] — its probabilistic occurrence
//!   model (alarm when 1 − p_false^n crosses a threshold).
//! * [`estimator`] — a common estimator interface plus weighted mean/median
//!   baselines.
//! * [`weighted`] — observation construction with the paper's reliability
//!   weights: GPS fixes at full weight, profile-derived locations weighted
//!   by the user's Top-k group.
//! * [`eval`] — estimation-error evaluation (km from true epicenter), the
//!   E8 experiment harness.

#![warn(missing_docs)]

pub mod estimator;
pub mod eval;
pub mod kalman;
pub mod online;
pub mod particle;
pub mod sensor;
pub mod tfidf;
pub mod toretter;
pub mod trend;
pub mod twitris;
pub mod weighted;

pub use estimator::{LocationEstimator, MeanEstimator, MedianEstimator, Observation};
pub use eval::error_km;
pub use kalman::KalmanEstimator;
pub use online::{OnlineAlert, OnlineToretter};
pub use particle::ParticleEstimator;
pub use sensor::SensorModel;
pub use toretter::{Toretter, ToretterAlert};
pub use trend::{BurstDetector, TermSeries};
pub use weighted::ObservationBuilder;
