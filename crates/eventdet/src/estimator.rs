//! The estimator interface and the closed-form baselines.

use stir_geoindex::Point;

/// One location observation feeding an estimator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Observation {
    /// Observed position (a GPS fix, or a profile-district centroid).
    pub point: Point,
    /// Trust weight in `(0, 1]`. GPS fixes carry 1.0; profile-derived
    /// positions carry the user's Top-k reliability weight.
    pub weight: f64,
    /// Observation time (window seconds); filters consume observations in
    /// time order.
    pub timestamp: u64,
}

impl Observation {
    /// A full-trust observation.
    pub fn trusted(point: Point, timestamp: u64) -> Self {
        Observation {
            point,
            weight: 1.0,
            timestamp,
        }
    }
}

/// An event-location estimator.
pub trait LocationEstimator {
    /// Short identifier for reports.
    fn name(&self) -> &'static str;

    /// Estimates the event location from observations (any order; the
    /// estimator sorts if it cares). `None` when no usable observation
    /// exists.
    fn estimate(&self, observations: &[Observation]) -> Option<Point>;
}

/// Weighted arithmetic mean of the observations.
#[derive(Clone, Copy, Debug, Default)]
pub struct MeanEstimator;

impl LocationEstimator for MeanEstimator {
    fn name(&self) -> &'static str {
        "weighted-mean"
    }

    fn estimate(&self, observations: &[Observation]) -> Option<Point> {
        let total: f64 = observations.iter().map(|o| o.weight).sum();
        if total <= 0.0 {
            return None;
        }
        let lat = observations
            .iter()
            .map(|o| o.point.lat * o.weight)
            .sum::<f64>()
            / total;
        let lon = observations
            .iter()
            .map(|o| o.point.lon * o.weight)
            .sum::<f64>()
            / total;
        Some(Point::new(lat, lon))
    }
}

/// Weighted coordinate-wise median — Toretter reports the estimated median
/// alongside the estimated centre (its Fig. 2); the median resists the
/// far-away noise profile locations introduce.
#[derive(Clone, Copy, Debug, Default)]
pub struct MedianEstimator;

fn weighted_median(values: &mut [(f64, f64)]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    values.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let total: f64 = values.iter().map(|v| v.1).sum();
    if total <= 0.0 {
        return None;
    }
    let mut acc = 0.0;
    for &(v, w) in values.iter() {
        acc += w;
        if acc >= total / 2.0 {
            return Some(v);
        }
    }
    values.last().map(|v| v.0)
}

impl LocationEstimator for MedianEstimator {
    fn name(&self) -> &'static str {
        "weighted-median"
    }

    fn estimate(&self, observations: &[Observation]) -> Option<Point> {
        let mut lats: Vec<(f64, f64)> = observations
            .iter()
            .map(|o| (o.point.lat, o.weight))
            .collect();
        let mut lons: Vec<(f64, f64)> = observations
            .iter()
            .map(|o| (o.point.lon, o.weight))
            .collect();
        Some(Point::new(
            weighted_median(&mut lats)?,
            weighted_median(&mut lons)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(lat: f64, lon: f64, w: f64) -> Observation {
        Observation {
            point: Point::new(lat, lon),
            weight: w,
            timestamp: 0,
        }
    }

    #[test]
    fn mean_of_symmetric_points_is_center() {
        let o = vec![obs(37.0, 127.0, 1.0), obs(38.0, 128.0, 1.0)];
        let p = MeanEstimator.estimate(&o).unwrap();
        assert!((p.lat - 37.5).abs() < 1e-12);
        assert!((p.lon - 127.5).abs() < 1e-12);
    }

    #[test]
    fn mean_respects_weights() {
        let o = vec![obs(37.0, 127.0, 3.0), obs(38.0, 128.0, 1.0)];
        let p = MeanEstimator.estimate(&o).unwrap();
        assert!((p.lat - 37.25).abs() < 1e-12);
    }

    #[test]
    fn median_ignores_outlier() {
        let mut o = vec![obs(37.0, 127.0, 1.0); 9];
        o.push(obs(33.0, 131.0, 1.0)); // far outlier
        let p = MedianEstimator.estimate(&o).unwrap();
        assert!((p.lat - 37.0).abs() < 1e-9);
        assert!((p.lon - 127.0).abs() < 1e-9);
    }

    #[test]
    fn median_respects_weights() {
        let o = vec![obs(37.0, 127.0, 0.1), obs(38.0, 128.0, 10.0)];
        let p = MedianEstimator.estimate(&o).unwrap();
        assert!((p.lat - 38.0).abs() < 1e-12);
    }

    #[test]
    fn empty_or_zero_weight_is_none() {
        assert!(MeanEstimator.estimate(&[]).is_none());
        assert!(MedianEstimator.estimate(&[]).is_none());
        assert!(MeanEstimator.estimate(&[obs(37.0, 127.0, 0.0)]).is_none());
    }
}
