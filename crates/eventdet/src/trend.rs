//! Keyword trend (burst) detection — Toretter's temporal side: "a system
//! that detects earthquakes by observing two predefined terms: earthquake
//! and shaking".
//!
//! The detector bins term occurrences over time and raises an alarm when a
//! bin's count exceeds a Poisson-style threshold over the trailing baseline
//! rate: `count > max(min_count, baseline + z·sqrt(baseline))`.

/// A term's binned time series.
#[derive(Clone, Debug)]
pub struct TermSeries {
    bin_secs: u64,
    counts: Vec<u64>,
}

impl TermSeries {
    /// An empty series with the given bin width.
    ///
    /// # Panics
    /// Panics if `bin_secs` is zero.
    pub fn new(bin_secs: u64) -> Self {
        assert!(bin_secs > 0, "bin width must be positive");
        TermSeries {
            bin_secs,
            counts: Vec::new(),
        }
    }

    /// Records one term occurrence at `timestamp`.
    pub fn record(&mut self, timestamp: u64) {
        let bin = (timestamp / self.bin_secs) as usize;
        if bin >= self.counts.len() {
            self.counts.resize(bin + 1, 0);
        }
        self.counts[bin] += 1;
    }

    /// Bin width.
    pub fn bin_secs(&self) -> u64 {
        self.bin_secs
    }

    /// The binned counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

/// Burst detector over a [`TermSeries`].
#[derive(Clone, Copy, Debug)]
pub struct BurstDetector {
    /// Trailing bins forming the baseline.
    pub baseline_bins: usize,
    /// Z-score multiplier over the Poisson standard deviation.
    pub z: f64,
    /// Absolute floor: a bin below this count never alarms.
    pub min_count: u64,
    /// Bins of history required before alarms are possible — prevents the
    /// cold-start false positive where an empty baseline makes any traffic
    /// look anomalous.
    pub warmup_bins: usize,
}

impl Default for BurstDetector {
    fn default() -> Self {
        BurstDetector {
            baseline_bins: 24,
            z: 4.0,
            min_count: 5,
            warmup_bins: 4,
        }
    }
}

impl BurstDetector {
    /// Returns the indexes of bursting bins.
    pub fn detect(&self, series: &TermSeries) -> Vec<usize> {
        let counts = series.counts();
        let mut out = Vec::new();
        for (i, &c) in counts.iter().enumerate() {
            if i < self.warmup_bins || c < self.min_count {
                continue;
            }
            let start = i.saturating_sub(self.baseline_bins);
            let window = &counts[start..i];
            let baseline = if window.is_empty() {
                0.0
            } else {
                window.iter().sum::<u64>() as f64 / window.len() as f64
            };
            let threshold = baseline + self.z * baseline.sqrt().max(1.0);
            if (c as f64) > threshold {
                out.push(i);
            }
        }
        out
    }

    /// The first bursting bin, if any.
    pub fn first_burst(&self, series: &TermSeries) -> Option<usize> {
        self.detect(series).into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_with(background: u64, spike_bin: usize, spike: u64) -> TermSeries {
        let mut s = TermSeries::new(60);
        for bin in 0..48usize {
            let n = if bin == spike_bin { spike } else { background };
            for k in 0..n {
                s.record(bin as u64 * 60 + k % 60);
            }
        }
        s
    }

    #[test]
    fn spike_over_quiet_background_bursts() {
        let s = series_with(1, 30, 40);
        let d = BurstDetector::default();
        assert_eq!(d.first_burst(&s), Some(30));
    }

    #[test]
    fn steady_traffic_never_bursts() {
        let s = series_with(10, 30, 10);
        assert!(BurstDetector::default().detect(&s).is_empty());
    }

    #[test]
    fn min_count_suppresses_tiny_spikes() {
        let s = series_with(0, 10, 3);
        assert!(BurstDetector::default().detect(&s).is_empty());
        let s2 = series_with(0, 10, 30);
        assert_eq!(BurstDetector::default().first_burst(&s2), Some(10));
    }

    #[test]
    fn record_binning() {
        let mut s = TermSeries::new(100);
        s.record(0);
        s.record(99);
        s.record(100);
        assert_eq!(s.counts(), &[2, 1]);
        assert_eq!(s.bin_secs(), 100);
    }

    #[test]
    fn detect_on_empty_series() {
        let s = TermSeries::new(60);
        assert!(BurstDetector::default().detect(&s).is_empty());
    }
}
