//! A Kalman filter for event-location estimation (Toretter applies "the
//! Kalman filter and the Particle filter … to the spatial attributes on
//! Twitter for location estimation of the event").
//!
//! The event does not move, so the model is constant-position: state =
//! (lat, lon) with small process noise, observed directly with measurement
//! noise scaled by the inverse observation weight. Axes are independent, so
//! two scalar filters suffice.

use stir_geoindex::Point;

use crate::estimator::{LocationEstimator, Observation};

/// Scalar constant-position Kalman filter.
#[derive(Clone, Copy, Debug)]
struct Scalar {
    x: f64,
    p: f64,
}

impl Scalar {
    fn new(x0: f64, p0: f64) -> Self {
        Scalar { x: x0, p: p0 }
    }

    fn step(&mut self, z: f64, q: f64, r: f64) {
        // Predict: x stays, uncertainty grows by process noise.
        self.p += q;
        // Update.
        let k = self.p / (self.p + r);
        self.x += k * (z - self.x);
        self.p *= 1.0 - k;
    }
}

/// Kalman-filter estimator over time-ordered observations.
#[derive(Clone, Copy, Debug)]
pub struct KalmanEstimator {
    /// Process noise per step (degrees²). Small: events do not move.
    pub process_noise: f64,
    /// Base measurement noise (degrees²) for a weight-1.0 observation;
    /// an observation of weight `w` gets `measurement_noise / w`.
    pub measurement_noise: f64,
}

impl Default for KalmanEstimator {
    fn default() -> Self {
        // ~1 km process noise, ~10 km measurement noise at weight 1.
        KalmanEstimator {
            process_noise: 1e-4,
            measurement_noise: 1e-2,
        }
    }
}

impl LocationEstimator for KalmanEstimator {
    fn name(&self) -> &'static str {
        "kalman"
    }

    fn estimate(&self, observations: &[Observation]) -> Option<Point> {
        let mut obs: Vec<&Observation> = observations.iter().filter(|o| o.weight > 0.0).collect();
        if obs.is_empty() {
            return None;
        }
        obs.sort_by_key(|o| o.timestamp);
        let first = obs[0];
        let mut lat = Scalar::new(first.point.lat, self.measurement_noise / first.weight);
        let mut lon = Scalar::new(first.point.lon, self.measurement_noise / first.weight);
        for o in &obs[1..] {
            let r = self.measurement_noise / o.weight;
            lat.step(o.point.lat, self.process_noise, r);
            lon.step(o.point.lon, self.process_noise, r);
        }
        Some(Point::new(
            lat.x.clamp(-90.0, 90.0),
            lon.x.clamp(-180.0, 180.0),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(lat: f64, lon: f64, w: f64, t: u64) -> Observation {
        Observation {
            point: Point::new(lat, lon),
            weight: w,
            timestamp: t,
        }
    }

    #[test]
    fn converges_to_noisy_constant() {
        // Noisy measurements around (36.5, 127.5).
        let truth = Point::new(36.5, 127.5);
        let mut observations = Vec::new();
        let mut s = 0.321f64;
        for t in 0..200u64 {
            s = (s * 9301.0 + 0.49297).fract();
            let nlat = (s - 0.5) * 0.2;
            s = (s * 9301.0 + 0.49297).fract();
            let nlon = (s - 0.5) * 0.2;
            observations.push(obs(truth.lat + nlat, truth.lon + nlon, 1.0, t));
        }
        let est = KalmanEstimator::default().estimate(&observations).unwrap();
        assert!(
            truth.haversine_km(est) < 3.0,
            "error {} km",
            truth.haversine_km(est)
        );
    }

    #[test]
    fn low_weight_observations_pull_less() {
        let anchor = obs(37.0, 127.0, 1.0, 0);
        let strong_pull = [anchor, obs(38.0, 128.0, 1.0, 1)];
        let weak_pull = [anchor, obs(38.0, 128.0, 0.05, 1)];
        let k = KalmanEstimator::default();
        let strong = k.estimate(&strong_pull).unwrap();
        let weak = k.estimate(&weak_pull).unwrap();
        let start = Point::new(37.0, 127.0);
        assert!(
            start.haversine_km(weak) < start.haversine_km(strong),
            "weak {} km vs strong {} km",
            start.haversine_km(weak),
            start.haversine_km(strong)
        );
    }

    #[test]
    fn single_observation_is_itself() {
        let k = KalmanEstimator::default();
        let p = k.estimate(&[obs(36.0, 128.0, 0.5, 0)]).unwrap();
        assert!((p.lat - 36.0).abs() < 1e-12);
    }

    #[test]
    fn unordered_input_is_sorted_internally() {
        let k = KalmanEstimator::default();
        let a = k.estimate(&[obs(37.0, 127.0, 1.0, 5), obs(37.2, 127.2, 1.0, 1)]);
        let b = k.estimate(&[obs(37.2, 127.2, 1.0, 1), obs(37.0, 127.0, 1.0, 5)]);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_weight_only_is_none() {
        assert!(KalmanEstimator::default()
            .estimate(&[obs(37.0, 127.0, 0.0, 0)])
            .is_none());
    }
}
