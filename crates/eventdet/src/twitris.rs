//! The Twitris baseline: spatio-temporal-thematic summarization.
//!
//! Twitris "presented a new paradigm in browsing citizen sensor observation
//! in three dimensions: time, space, and theme", extracting popular TF-IDF
//! terms per day per location — and, crucially for this paper, "regarded
//! the registered location in the user profile as an approximation for the
//! current location of a tweet". This module reproduces that summarizer;
//! the reliability analysis quantifies exactly how good that approximation
//! is.

use std::collections::HashMap;

use crate::tfidf::TfIdf;

/// One tweet as Twitris consumes it: a time bucket, a *space* label (the
/// profile-derived state, per the original system), and text.
#[derive(Clone, Debug)]
pub struct TwitrisInput<'a> {
    /// Day index (or any coarse time bucket).
    pub day: u32,
    /// Space label — Twitris used the profile location's region.
    pub space: &'a str,
    /// Tweet text.
    pub text: &'a str,
}

/// A (day, space) summary cell.
#[derive(Clone, Debug, PartialEq)]
pub struct SummaryCell {
    /// Day index.
    pub day: u32,
    /// Space label.
    pub space: String,
    /// Tweets aggregated into this cell.
    pub tweet_count: u64,
    /// Top TF-IDF terms with scores, descending.
    pub top_terms: Vec<(String, f64)>,
}

/// Builds the spatio-temporal-thematic summary: one cell per (day, space)
/// with its top-`k` TF-IDF terms, IDF computed across all cells.
pub fn summarize(inputs: &[TwitrisInput<'_>], k: usize) -> Vec<SummaryCell> {
    // Bucket texts per (day, space).
    let mut buckets: HashMap<(u32, String), Vec<&str>> = HashMap::new();
    for t in inputs {
        buckets
            .entry((t.day, t.space.to_string()))
            .or_default()
            .push(t.text);
    }
    let mut keys: Vec<(u32, String)> = buckets.keys().cloned().collect();
    keys.sort();

    let mut corpus = TfIdf::new();
    let mut counts = Vec::with_capacity(keys.len());
    for key in &keys {
        let texts = &buckets[key];
        counts.push(texts.len() as u64);
        corpus.add_document(&format!("{}@{}", key.1, key.0), texts.iter().copied());
    }

    keys.into_iter()
        .enumerate()
        .map(|(doc, (day, space))| SummaryCell {
            day,
            space,
            tweet_count: counts[doc],
            top_terms: corpus.top_terms(doc, k),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_separates_space_and_time() {
        let inputs = vec![
            TwitrisInput {
                day: 0,
                space: "Seoul",
                text: "earthquake shaking downtown",
            },
            TwitrisInput {
                day: 0,
                space: "Seoul",
                text: "earthquake again scary",
            },
            TwitrisInput {
                day: 0,
                space: "Busan",
                text: "beach festival music",
            },
            TwitrisInput {
                day: 1,
                space: "Seoul",
                text: "coffee morning meeting",
            },
        ];
        let cells = summarize(&inputs, 3);
        assert_eq!(cells.len(), 3);
        let seoul_d0 = cells
            .iter()
            .find(|c| c.space == "Seoul" && c.day == 0)
            .unwrap();
        assert_eq!(seoul_d0.tweet_count, 2);
        assert_eq!(seoul_d0.top_terms[0].0, "earthquake");
        let busan = cells.iter().find(|c| c.space == "Busan").unwrap();
        assert!(busan.top_terms.iter().any(|(t, _)| t == "festival"));
    }

    #[test]
    fn deterministic_cell_order() {
        let inputs = vec![
            TwitrisInput {
                day: 1,
                space: "B",
                text: "bb",
            },
            TwitrisInput {
                day: 0,
                space: "A",
                text: "aa",
            },
        ];
        let cells = summarize(&inputs, 1);
        assert_eq!(cells[0].day, 0);
        assert_eq!(cells[1].day, 1);
    }

    #[test]
    fn empty_input_is_empty_summary() {
        assert!(summarize(&[], 5).is_empty());
    }
}
