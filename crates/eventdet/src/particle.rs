//! A particle filter for event-location estimation (the second of
//! Toretter's two filters).
//!
//! Particles are candidate epicenters. Initialization scatters them around
//! the first observations; each observation re-weights particles with a
//! Gaussian likelihood whose spread widens for low-trust observations;
//! systematic resampling with jitter keeps the cloud healthy. The estimate
//! is the weighted particle mean.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stir_geoindex::Point;

use crate::estimator::{LocationEstimator, Observation};

/// Particle-filter estimator. Deterministic for a fixed `seed`.
#[derive(Clone, Copy, Debug)]
pub struct ParticleEstimator {
    /// Number of particles.
    pub particles: usize,
    /// Likelihood σ in degrees for a weight-1.0 observation; an observation
    /// of weight `w` uses `sigma / sqrt(w)`.
    pub sigma_deg: f64,
    /// Initial scatter radius (degrees) around the first observation.
    pub init_spread_deg: f64,
    /// Resampling jitter σ (degrees).
    pub jitter_deg: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ParticleEstimator {
    fn default() -> Self {
        ParticleEstimator {
            particles: 512,
            sigma_deg: 0.15,
            init_spread_deg: 0.8,
            jitter_deg: 0.01,
            seed: 0xBEEF,
        }
    }
}

impl LocationEstimator for ParticleEstimator {
    fn name(&self) -> &'static str {
        "particle"
    }

    fn estimate(&self, observations: &[Observation]) -> Option<Point> {
        let mut obs: Vec<&Observation> = observations.iter().filter(|o| o.weight > 0.0).collect();
        if obs.is_empty() || self.particles == 0 {
            return None;
        }
        obs.sort_by_key(|o| o.timestamp);
        let mut rng = StdRng::seed_from_u64(self.seed);

        let anchor = obs[0].point;
        let mut px: Vec<f64> = Vec::with_capacity(self.particles);
        let mut py: Vec<f64> = Vec::with_capacity(self.particles);
        for _ in 0..self.particles {
            px.push(anchor.lat + (rng.gen::<f64>() - 0.5) * 2.0 * self.init_spread_deg);
            py.push(anchor.lon + (rng.gen::<f64>() - 0.5) * 2.0 * self.init_spread_deg);
        }
        let mut weights = vec![1.0 / self.particles as f64; self.particles];

        for o in &obs {
            let sigma = self.sigma_deg / o.weight.sqrt();
            let inv2s2 = 1.0 / (2.0 * sigma * sigma);
            let mut total = 0.0;
            for i in 0..self.particles {
                let dlat = px[i] - o.point.lat;
                let dlon = (py[i] - o.point.lon) * o.point.lat.to_radians().cos();
                let d2 = dlat * dlat + dlon * dlon;
                weights[i] *= (-d2 * inv2s2).exp().max(1e-300);
                total += weights[i];
            }
            if total <= 0.0 || !total.is_finite() {
                // Degenerate: reset to uniform rather than dying.
                weights.fill(1.0 / self.particles as f64);
                continue;
            }
            for w in &mut weights {
                *w /= total;
            }
            // Effective sample size; resample when the cloud collapses.
            let ess = 1.0 / weights.iter().map(|w| w * w).sum::<f64>();
            if ess < self.particles as f64 / 2.0 {
                self.resample(&mut px, &mut py, &mut weights, &mut rng);
            }
        }

        let lat: f64 =
            px.iter().zip(&weights).map(|(x, w)| x * w).sum::<f64>() / weights.iter().sum::<f64>();
        let lon: f64 =
            py.iter().zip(&weights).map(|(y, w)| y * w).sum::<f64>() / weights.iter().sum::<f64>();
        Some(Point::new(lat.clamp(-90.0, 90.0), lon.clamp(-180.0, 180.0)))
    }
}

impl ParticleEstimator {
    /// Systematic resampling with Gaussian-ish jitter.
    fn resample(&self, px: &mut [f64], py: &mut [f64], weights: &mut [f64], rng: &mut StdRng) {
        let n = px.len();
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for &w in weights.iter() {
            acc += w;
            cumulative.push(acc);
        }
        let step = acc / n as f64;
        let start = rng.gen::<f64>() * step;
        let mut new_x = Vec::with_capacity(n);
        let mut new_y = Vec::with_capacity(n);
        let mut j = 0;
        for i in 0..n {
            let target = start + i as f64 * step;
            while j < n - 1 && cumulative[j] < target {
                j += 1;
            }
            // Jitter: sum of uniforms ≈ Gaussian, cheap and deterministic.
            let jx = (rng.gen::<f64>() + rng.gen::<f64>() - 1.0) * self.jitter_deg;
            let jy = (rng.gen::<f64>() + rng.gen::<f64>() - 1.0) * self.jitter_deg;
            new_x.push(px[j] + jx);
            new_y.push(py[j] + jy);
        }
        px.copy_from_slice(&new_x);
        py.copy_from_slice(&new_y);
        weights.fill(1.0 / n as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(lat: f64, lon: f64, w: f64, t: u64) -> Observation {
        Observation {
            point: Point::new(lat, lon),
            weight: w,
            timestamp: t,
        }
    }

    fn noisy_cloud(center: Point, n: usize, spread: f64, w: f64) -> Vec<Observation> {
        let mut s = 0.777f64;
        (0..n)
            .map(|t| {
                s = (s * 9301.0 + 0.49297).fract();
                let a = (s - 0.5) * spread;
                s = (s * 9301.0 + 0.49297).fract();
                let b = (s - 0.5) * spread;
                obs(center.lat + a, center.lon + b, w, t as u64)
            })
            .collect()
    }

    #[test]
    fn converges_on_noisy_cluster() {
        let truth = Point::new(36.4, 127.6);
        let observations = noisy_cloud(truth, 80, 0.3, 1.0);
        let est = ParticleEstimator::default()
            .estimate(&observations)
            .unwrap();
        assert!(
            truth.haversine_km(est) < 8.0,
            "error {} km",
            truth.haversine_km(est)
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let observations = noisy_cloud(Point::new(37.0, 127.0), 40, 0.2, 1.0);
        let a = ParticleEstimator::default().estimate(&observations);
        let b = ParticleEstimator::default().estimate(&observations);
        assert_eq!(a, b);
        // Different seeds approximate the same posterior but with Monte
        // Carlo variance on a 512-particle cloud; they agree coarsely.
        let c = ParticleEstimator {
            seed: 99,
            ..Default::default()
        }
        .estimate(&observations);
        assert!(a.unwrap().haversine_km(c.unwrap()) < 15.0);
    }

    #[test]
    fn downweighted_outliers_hurt_less() {
        let truth = Point::new(37.0, 127.0);
        let mut good = noisy_cloud(truth, 30, 0.2, 1.0);
        // A cluster of bad observations far away (like wrong profile homes).
        let bad_full: Vec<Observation> = noisy_cloud(Point::new(35.2, 129.0), 30, 0.2, 1.0)
            .into_iter()
            .collect();
        let bad_down: Vec<Observation> = bad_full
            .iter()
            .map(|o| Observation { weight: 0.05, ..*o })
            .collect();
        let mut with_full = good.clone();
        with_full.extend(bad_full);
        good.extend(bad_down);
        let est = ParticleEstimator::default();
        let err_full = truth.haversine_km(est.estimate(&with_full).unwrap());
        let err_down = truth.haversine_km(est.estimate(&good).unwrap());
        assert!(
            err_down < err_full,
            "down {err_down} km vs full {err_full} km"
        );
    }

    #[test]
    fn empty_is_none() {
        assert!(ParticleEstimator::default().estimate(&[]).is_none());
        assert!(ParticleEstimator {
            particles: 0,
            ..Default::default()
        }
        .estimate(&[obs(37.0, 127.0, 1.0, 0)])
        .is_none());
    }
}
