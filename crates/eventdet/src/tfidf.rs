//! TF-IDF term scoring (the machinery behind Twitris: "this system used
//! the TFIDF algorithm to extract popular terms in a day").

use std::collections::HashMap;

/// Tokenizes text: lowercase ASCII, alphanumeric runs, ≥ 2 chars, minus a
/// tiny stop list.
pub fn tokenize(text: &str) -> Vec<String> {
    const STOP: &[&str] = &[
        "the", "a", "an", "in", "on", "at", "to", "of", "and", "or", "is", "it", "my", "me", "so",
        "for", "with", "this", "that",
    ];
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() {
            cur.extend(c.to_lowercase());
        } else if !cur.is_empty() {
            if cur.chars().count() >= 2 && !STOP.contains(&cur.as_str()) {
                out.push(std::mem::take(&mut cur));
            } else {
                cur.clear();
            }
        }
    }
    if cur.chars().count() >= 2 && !STOP.contains(&cur.as_str()) {
        out.push(cur);
    }
    out
}

/// A TF-IDF corpus over named documents (each document is a slice of the
/// tweet stream, e.g. one (day, state) cell).
#[derive(Debug, Default)]
pub struct TfIdf {
    /// Term frequencies per document.
    docs: Vec<(String, HashMap<String, u32>)>,
    /// Document frequency per term.
    df: HashMap<String, u32>,
}

impl TfIdf {
    /// An empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a document built from many texts; returns its index.
    pub fn add_document<'t, I: IntoIterator<Item = &'t str>>(
        &mut self,
        name: &str,
        texts: I,
    ) -> usize {
        let mut tf: HashMap<String, u32> = HashMap::new();
        for text in texts {
            for tok in tokenize(text) {
                *tf.entry(tok).or_insert(0) += 1;
            }
        }
        for term in tf.keys() {
            *self.df.entry(term.clone()).or_insert(0) += 1;
        }
        self.docs.push((name.to_string(), tf));
        self.docs.len() - 1
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when no documents were added.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The TF-IDF score of `term` in document `doc`:
    /// `tf · ln(N / df)` with raw term counts.
    pub fn score(&self, doc: usize, term: &str) -> f64 {
        let tf = *self.docs[doc].1.get(term).unwrap_or(&0) as f64;
        if tf == 0.0 {
            return 0.0;
        }
        let n = self.docs.len() as f64;
        let df = *self.df.get(term).unwrap_or(&1) as f64;
        tf * (n / df).ln()
    }

    /// The `k` highest-scoring terms of a document, score-descending (ties
    /// alphabetical for determinism).
    pub fn top_terms(&self, doc: usize, k: usize) -> Vec<(String, f64)> {
        let mut scored: Vec<(String, f64)> = self.docs[doc]
            .1
            .keys()
            .map(|t| (t.clone(), self.score(doc, t)))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }

    /// Document name by index.
    pub fn doc_name(&self, doc: usize) -> &str {
        &self.docs[doc].0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_basics() {
        assert_eq!(
            tokenize("Just arrived in Jung-gu!!"),
            vec!["just", "arrived", "jung", "gu"]
        );
        assert_eq!(tokenize("the a an"), Vec::<String>::new());
        assert_eq!(tokenize(""), Vec::<String>::new());
    }

    #[test]
    fn distinctive_terms_outscore_common_ones() {
        let mut c = TfIdf::new();
        let d0 = c.add_document("day0", ["coffee coffee morning", "coffee time"]);
        let _d1 = c.add_document("day1", ["morning run", "morning meeting"]);
        let _d2 = c.add_document("day2", ["morning traffic"]);
        // "coffee" appears only in d0; "morning" appears everywhere.
        assert!(c.score(d0, "coffee") > c.score(d0, "morning"));
        assert_eq!(c.score(d0, "absent"), 0.0);
    }

    #[test]
    fn top_terms_sorted_and_truncated() {
        let mut c = TfIdf::new();
        let d = c.add_document("d", ["earthquake earthquake shaking tremor"]);
        c.add_document("other", ["lunch time"]);
        let top = c.top_terms(d, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, "earthquake");
        assert!(top[0].1 >= top[1].1);
    }

    #[test]
    fn single_document_idf_is_zero() {
        let mut c = TfIdf::new();
        let d = c.add_document("only", ["hello world"]);
        // ln(1/1) = 0 → every score zero; top_terms still deterministic.
        assert_eq!(c.score(d, "hello"), 0.0);
        assert_eq!(c.top_terms(d, 5).len(), 2);
    }
}
