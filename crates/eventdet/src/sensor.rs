//! Sakaki et al.'s probabilistic sensor model (the Toretter paper's event
//! occurrence test, reproduced as related work).
//!
//! Each user is a sensor with false-positive rate `p_false`: a matching
//! tweet that is *not* caused by a real event. If `n` sensors report within
//! a window, the probability that *all* of them are false positives is
//! `p_false^n`, so the event-occurrence probability is `1 − p_false^n`;
//! Toretter alarms when it crosses a threshold (they used 0.99 with
//! per-sensor reliability calibrated from training data).

/// The probabilistic occurrence model.
#[derive(Clone, Copy, Debug)]
pub struct SensorModel {
    /// Probability that a single matching report is a false positive.
    pub p_false: f64,
    /// Occurrence-probability threshold for raising an alarm.
    pub threshold: f64,
}

impl Default for SensorModel {
    fn default() -> Self {
        // Sakaki et al. used pf = 0.35 and a 0.99 threshold.
        SensorModel {
            p_false: 0.35,
            threshold: 0.99,
        }
    }
}

impl SensorModel {
    /// The event-occurrence probability given `n` reporting sensors:
    /// `1 − p_false^n`.
    pub fn occurrence_probability(&self, n_sensors: u64) -> f64 {
        1.0 - self.p_false.powi(n_sensors.min(i32::MAX as u64) as i32)
    }

    /// True when `n` sensors are enough to alarm.
    pub fn alarms(&self, n_sensors: u64) -> bool {
        self.occurrence_probability(n_sensors) > self.threshold
    }

    /// The minimum number of sensors needed to alarm:
    /// smallest n with `1 − p_false^n > threshold`.
    pub fn sensors_needed(&self) -> u64 {
        if self.threshold >= 1.0 {
            return u64::MAX;
        }
        if self.threshold < 0.0 || self.p_false <= 0.0 {
            return 1;
        }
        // p_false^n < 1 - threshold  ⇒  n > ln(1-threshold) / ln(p_false)
        let n = (1.0 - self.threshold).ln() / self.p_false.ln();
        (n.floor() as u64) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occurrence_probability_grows_with_sensors() {
        let m = SensorModel::default();
        assert!(m.occurrence_probability(0) == 0.0);
        let mut prev = 0.0;
        for n in 1..10 {
            let p = m.occurrence_probability(n);
            assert!(p > prev);
            assert!(p < 1.0);
            prev = p;
        }
    }

    #[test]
    fn sakaki_defaults_need_five_sensors() {
        // pf=0.35, threshold 0.99: 0.35^4 ≈ 0.015 (not enough),
        // 0.35^5 ≈ 0.005 (< 0.01) → 5 sensors.
        let m = SensorModel::default();
        assert_eq!(m.sensors_needed(), 5);
        assert!(!m.alarms(4));
        assert!(m.alarms(5));
    }

    #[test]
    fn threshold_edge_cases() {
        assert_eq!(
            SensorModel {
                p_false: 0.35,
                threshold: 1.0
            }
            .sensors_needed(),
            u64::MAX
        );
        assert_eq!(
            SensorModel {
                p_false: 0.0,
                threshold: 0.99
            }
            .sensors_needed(),
            1
        );
        let strict = SensorModel {
            p_false: 0.9,
            threshold: 0.999,
        };
        assert!(strict.sensors_needed() > 50);
        assert!(strict.alarms(strict.sensors_needed()));
        assert!(!strict.alarms(strict.sensors_needed() - 1));
    }

    #[test]
    fn consistency_between_alarms_and_needed() {
        for pf in [0.1, 0.35, 0.5, 0.8] {
            for th in [0.9, 0.99, 0.999] {
                let m = SensorModel {
                    p_false: pf,
                    threshold: th,
                };
                let n = m.sensors_needed();
                assert!(m.alarms(n), "pf={pf} th={th} n={n}");
                if n > 1 {
                    assert!(!m.alarms(n - 1), "pf={pf} th={th} n={n}");
                }
            }
        }
    }
}
