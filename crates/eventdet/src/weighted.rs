//! Observation construction with reliability weights — the paper's
//! future-work experiment made concrete.
//!
//! An event report either carries GPS (trust it fully) or does not — then
//! the only spatial attribute left is the author's *profile location*, and
//! the paper's whole point is that its trustworthiness varies by Top-k
//! group: a Top-1 user's profile is where they actually tweet from; a
//! None-group user's profile is somewhere they never tweet from. The
//! builder turns reports into [`Observation`]s accordingly.

use std::collections::HashMap;

use stir_core::{AnalysisResult, ReliabilityWeights, TopKGroup};
use stir_geoindex::Point;
use stir_geokr::{DistrictId, Gazetteer};

use crate::estimator::Observation;

/// A raw event report before weighting.
#[derive(Clone, Copy, Debug)]
pub struct RawReport {
    /// Reporting user.
    pub user: u64,
    /// Report time (window seconds).
    pub timestamp: u64,
    /// GPS fix, when the client attached one.
    pub gps: Option<Point>,
}

/// Builds weighted observations from raw reports.
pub struct ObservationBuilder<'g> {
    gazetteer: &'g Gazetteer,
    weights: ReliabilityWeights,
    groups: HashMap<u64, TopKGroup>,
    profile_district: HashMap<u64, DistrictId>,
    /// Weight for profile-derived observations of users outside the
    /// analysed cohort (no grouping information at all).
    pub unknown_user_weight: f64,
}

impl<'g> ObservationBuilder<'g> {
    /// Builds from a completed reliability analysis. `floor` is the minimum
    /// group weight (see [`ReliabilityWeights::from_cohort`]).
    pub fn from_analysis(gazetteer: &'g Gazetteer, analysis: &AnalysisResult, floor: f64) -> Self {
        let weights = ReliabilityWeights::from_cohort(&analysis.users, floor);
        let mut groups = HashMap::with_capacity(analysis.users.len());
        let mut profile_district = HashMap::with_capacity(analysis.kept_profiles.len());
        // Every well-defined profile is usable as a (possibly unreliable)
        // position source — that is how Twitris/Toretter consumed profiles.
        for (&user, (state, county)) in &analysis.kept_profiles {
            if let Some(id) = resolve_profile(gazetteer, state, county) {
                profile_district.insert(user, id);
            }
        }
        for u in &analysis.users {
            groups.insert(u.user, u.group());
            if let Some(id) = resolve_profile(gazetteer, &u.state_profile, &u.county_profile) {
                profile_district.insert(u.user, id);
            }
        }
        ObservationBuilder {
            gazetteer,
            weights,
            groups,
            profile_district,
            unknown_user_weight: floor,
        }
    }

    /// Builds with explicit weights and per-user metadata (tests,
    /// ablations).
    pub fn with_weights(
        gazetteer: &'g Gazetteer,
        weights: ReliabilityWeights,
        groups: HashMap<u64, TopKGroup>,
        profile_district: HashMap<u64, DistrictId>,
    ) -> Self {
        ObservationBuilder {
            gazetteer,
            weights,
            groups,
            profile_district,
            unknown_user_weight: 0.05,
        }
    }

    /// Replaces the weight profile (e.g. [`ReliabilityWeights::uniform`]
    /// for the unweighted baseline) keeping the user metadata.
    pub fn with_weight_profile(mut self, weights: ReliabilityWeights) -> Self {
        self.weights = weights;
        self
    }

    /// The weight profile currently in use.
    pub fn weights(&self) -> &ReliabilityWeights {
        &self.weights
    }

    /// Converts raw reports to observations:
    ///
    /// * GPS report → the fix at weight 1.0.
    /// * No GPS, known profile district → the district centroid at the
    ///   user's group weight (or `unknown_user_weight` without a group).
    /// * No GPS, no profile district → dropped.
    pub fn build(&self, reports: &[RawReport]) -> Vec<Observation> {
        let mut out = Vec::with_capacity(reports.len());
        for r in reports {
            if let Some(p) = r.gps {
                out.push(Observation {
                    point: p,
                    weight: 1.0,
                    timestamp: r.timestamp,
                });
                continue;
            }
            let Some(&district) = self.profile_district.get(&r.user) else {
                continue;
            };
            let weight = match self.groups.get(&r.user) {
                Some(&g) => self.weights.weight(g),
                None => self.unknown_user_weight,
            };
            if weight <= 0.0 {
                continue;
            }
            out.push(Observation {
                point: self.gazetteer.district(district).centroid,
                weight,
                timestamp: r.timestamp,
            });
        }
        out
    }
}

fn resolve_profile(gazetteer: &Gazetteer, state: &str, county: &str) -> Option<DistrictId> {
    gazetteer
        .find_by_name_en(county)
        .iter()
        .copied()
        .find(|&id| gazetteer.district(id).province.name_en() == state)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaz() -> &'static Gazetteer {
        Box::leak(Box::new(Gazetteer::load()))
    }

    fn builder(g: &'static Gazetteer) -> ObservationBuilder<'static> {
        let yangcheon = g.find_by_name_en("Yangcheon-gu")[0];
        let gangnam = g.find_by_name_en("Gangnam-gu")[0];
        let mut groups = HashMap::new();
        groups.insert(1, TopKGroup::Top1);
        groups.insert(2, TopKGroup::None);
        let mut profile = HashMap::new();
        profile.insert(1, yangcheon);
        profile.insert(2, gangnam);
        let weights = ReliabilityWeights::fixed([0.8, 0.5, 0.3, 0.2, 0.15, 0.1, 0.02]);
        ObservationBuilder::with_weights(g, weights, groups, profile)
    }

    #[test]
    fn gps_reports_are_full_weight() {
        let g = gaz();
        let b = builder(g);
        let obs = b.build(&[RawReport {
            user: 1,
            timestamp: 10,
            gps: Some(Point::new(37.5, 127.0)),
        }]);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].weight, 1.0);
    }

    #[test]
    fn profile_reports_weighted_by_group() {
        let g = gaz();
        let b = builder(g);
        let obs = b.build(&[
            RawReport {
                user: 1,
                timestamp: 0,
                gps: None,
            }, // Top-1 → 0.8
            RawReport {
                user: 2,
                timestamp: 0,
                gps: None,
            }, // None → 0.02
        ]);
        assert_eq!(obs.len(), 2);
        assert!((obs[0].weight - 0.8).abs() < 1e-12);
        assert!((obs[1].weight - 0.02).abs() < 1e-12);
        // Positions are the profile centroids.
        let yangcheon = g.find_by_name_en("Yangcheon-gu")[0];
        assert_eq!(obs[0].point, g.district(yangcheon).centroid);
    }

    #[test]
    fn unknown_users_without_gps_use_default_or_drop() {
        let g = gaz();
        let b = builder(g);
        // User 99 has no profile district recorded → dropped.
        let obs = b.build(&[RawReport {
            user: 99,
            timestamp: 0,
            gps: None,
        }]);
        assert!(obs.is_empty());
    }

    #[test]
    fn uniform_profile_restores_unweighted_behaviour() {
        let g = gaz();
        let b = builder(g).with_weight_profile(ReliabilityWeights::uniform());
        let obs = b.build(&[RawReport {
            user: 2,
            timestamp: 0,
            gps: None,
        }]);
        assert_eq!(obs[0].weight, 1.0);
    }
}
