//! Streaming collection + online detection: filter the firehose for a
//! keyword (the Lady-Gaga-dataset collection path) and watch a second
//! keyword with the mid-bin burst detector.
//!
//! ```sh
//! cargo run --release --example streaming_firehose
//! ```

use stir::eventdet::OnlineToretter;
use stir::geoindex::Point;
use stir::geokr::Gazetteer;
use stir::twitter_sim::datasets::{Dataset, DatasetSpec};
use stir::twitter_sim::event::{inject, EventScenario};
use stir::twitter_sim::stream::{collect, StreamSpec};

fn main() {
    let gazetteer = Gazetteer::load();
    let dataset = Dataset::generate(
        DatasetSpec {
            n_users: 4_000,
            ..DatasetSpec::korean_paper()
        },
        &gazetteer,
        13,
    );

    // Part 1 — keyword collection, the way the paper's second dataset was
    // gathered through the streaming API.
    let spec = StreamSpec {
        sample_rate: 0.6,
        ..StreamSpec::keyword("coffee")
    };
    let collection = collect(&dataset, &gazetteer, &spec);
    println!(
        "streaming filter 'coffee' at 60% sampling: {} matched, {} delivered, {} distinct users",
        collection.matched,
        collection.tweets.len(),
        collection.users.len()
    );

    // Part 2 — online burst detection over a merged live stream with an
    // injected earthquake.
    let epicenter = Point::new(35.17, 129.07); // Busan
    let scenario = EventScenario::earthquake(epicenter, 30_000);
    let reports = inject(&scenario, &dataset, &gazetteer, 5);
    println!(
        "\ninjected earthquake at {epicenter}, t = {} s: {} reports",
        scenario.start,
        reports.len()
    );

    let mut stream: Vec<(u64, u64, String, Option<Point>)> = Vec::new();
    for u in dataset.users.iter().take(800) {
        for t in dataset.user_tweets(&gazetteer, u.id) {
            stream.push((t.user.0, t.timestamp, t.text, t.gps));
        }
    }
    for r in &reports {
        stream.push((
            r.tweet.user.0,
            r.tweet.timestamp,
            r.tweet.text.clone(),
            r.tweet.gps,
        ));
    }
    stream.sort_by_key(|s| s.1);

    let mut detector = OnlineToretter::new("earthquake");
    for (user, ts, text, gps) in &stream {
        if let Some(alert) = detector.push(*user, *ts, text, *gps) {
            println!(
                "ALERT at t = {} s — {} s after the event, {} reports buffered, bin {}",
                alert.triggered_at,
                alert.triggered_at.saturating_sub(scenario.start),
                alert.reports.len(),
                alert.bin
            );
            let gps_points: Vec<Point> = alert.reports.iter().filter_map(|r| r.gps).collect();
            if !gps_points.is_empty() {
                let lat = gps_points.iter().map(|p| p.lat).sum::<f64>() / gps_points.len() as f64;
                let lon = gps_points.iter().map(|p| p.lon).sum::<f64>() / gps_points.len() as f64;
                let est = Point::new(lat, lon);
                println!(
                    "quick GPS-only estimate: {est} ({:.1} km from the true epicenter)",
                    epicenter.haversine_km(est)
                );
            }
            return;
        }
    }
    println!("no alert raised (event too weak for this cohort)");
}
