//! Dataset explorer: load a generated corpus into the tweet store and run
//! indexed queries over it — per user, per time range, per bounding box.
//!
//! ```sh
//! cargo run --release --example dataset_explorer
//! ```

use stir::geoindex::BBox;
use stir::geokr::Gazetteer;
use stir::tweetstore::{Query, TweetRecord, TweetStore};
use stir::twitter_sim::datasets::{Dataset, DatasetSpec};

fn main() {
    let gazetteer = Gazetteer::load();
    let spec = DatasetSpec {
        n_users: 3_000,
        ..DatasetSpec::korean_paper()
    };
    let dataset = Dataset::generate(spec, &gazetteer, 5);

    // Ingest every tweet.
    let mut store = TweetStore::new();
    dataset.for_each_tweet(&gazetteer, |t| {
        store.append(&TweetRecord {
            id: t.id.0,
            user: t.user.0,
            timestamp: t.timestamp,
            gps: t.gps,
            text: t.text.clone(),
        });
    });
    let stats = store.stats();
    println!(
        "store: {} records ({} with GPS) in {} segments, {:.1} MiB payload, {} users",
        stats.records,
        stats.gps_records,
        stats.segments,
        stats.payload_bytes as f64 / (1024.0 * 1024.0),
        store.user_count(),
    );

    // Busiest GPS user.
    let busiest = dataset
        .users
        .iter()
        .max_by_key(|u| {
            store
                .user_ptrs(u.id.0)
                .iter()
                .filter(|&&p| store.get(p).is_ok_and(|r| r.gps.is_some()))
                .count()
        })
        .unwrap();
    let their_gps = Query::all().user(busiest.id.0).gps(true).execute(&store);
    println!(
        "\nbusiest GPS user: {} ({:?}) with {} GPS tweets",
        busiest.id,
        busiest.location_text,
        their_gps.len()
    );

    // One day of traffic.
    let day3 = Query::all().between(3 * 86_400, 4 * 86_400).execute(&store);
    println!("day 3 of the window: {} tweets", day3.len());

    // Everything GPS-tagged inside Seoul.
    let seoul = BBox::new(37.42, 126.76, 37.70, 127.19);
    let q = Query::all().within(seoul);
    println!(
        "GPS tweets inside Seoul bbox: {} (access path: {:?})",
        q.execute(&store).len(),
        q.plan(&store)
    );

    // Persistence round trip.
    let dir = std::env::temp_dir().join("stir-dataset-explorer");
    let _ = std::fs::remove_dir_all(&dir);
    stir::tweetstore::persist::save(&store, &dir).expect("save");
    let loaded = stir::tweetstore::persist::load(&dir).expect("load");
    println!(
        "\npersisted to {} and reloaded: {} records, checksums verified",
        dir.display(),
        loaded.len()
    );
    std::fs::remove_dir_all(&dir).ok();
}
