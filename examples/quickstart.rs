//! Quickstart: generate a small synthetic Twitter crawl, run the paper's
//! refinement pipeline, and print the Top-k reliability analysis.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use stir::core::{report, GroupTable, PipelineInput, ProfileRow, RefinementPipeline, TweetRow};
use stir::geokr::Gazetteer;
use stir::twitter_sim::datasets::{Dataset, DatasetSpec};

fn main() {
    // 1. The gazetteer: every 2011-era Korean district.
    let gazetteer = Gazetteer::load();
    println!(
        "gazetteer: {} districts across 16 provinces",
        gazetteer.len()
    );

    // 2. A small Korean-style dataset (2,000 users instead of 52,200).
    let spec = DatasetSpec {
        n_users: 2_000,
        ..DatasetSpec::korean_paper()
    };
    let dataset = Dataset::generate(spec, &gazetteer, 42);
    println!(
        "dataset: {} users, ~{} tweets",
        dataset.len(),
        dataset.total_tweets()
    );

    // 3. The refinement pipeline: classify profiles, keep GPS tweets,
    //    geocode both sides, build and group the location strings.
    let pipeline = RefinementPipeline::with_defaults(&gazetteer);
    let profiles = dataset.users.iter().map(|u| ProfileRow {
        user: u.id.0,
        location_text: u.location_text.clone(),
    });
    let tweets = dataset.users.iter().flat_map(|u| {
        dataset
            .user_tweets(&gazetteer, u.id)
            .into_iter()
            .map(|t| TweetRow {
                user: t.user.0,
                tweet_id: t.id.0,
                gps: t.gps,
            })
    });
    let result = pipeline.execute(profiles, PipelineInput::rows(tweets));

    // 4. The paper's funnel and group statistics.
    println!("\n{}", report::render_funnel(&result.funnel));
    let table = GroupTable::compute(&result.users);
    println!("{}", report::render_group_table(&table));
    println!(
        "headline: {:.1}% of users post most tweets from their profile district (Top-1+Top-2); \
         {:.1}% never do (None).",
        table.top1_top2_pct(),
        table.row(stir::core::TopKGroup::None).user_pct
    );
}
