//! Profile auditor: classify free-text profile locations the way the
//! paper's refinement step does.
//!
//! With no arguments it audits the paper's own Fig. 3 examples plus a few
//! more; pass your own strings as arguments to audit them instead:
//!
//! ```sh
//! cargo run --release --example profile_auditor -- "Seoul Gangnam-gu" "my couch"
//! ```

use stir::geokr::Gazetteer;
use stir::textgeo::{ProfileClass, ProfileClassifier};

fn main() {
    let gazetteer = Gazetteer::load();
    let classifier = ProfileClassifier::new(&gazetteer);

    let args: Vec<String> = std::env::args().skip(1).collect();
    let samples: Vec<String> = if args.is_empty() {
        [
            // The paper's Fig. 3 flavour.
            "Seoul Yangcheon-gu",
            "서울특별시 양천구",
            "darangland :)",
            "Earth",
            "Gold Coast Australia / 서울 양천구",
            "37.517, 126.866",
            // More realistic mess.
            "Seoul",
            "Korea",
            "Jung-gu",
            "bucheon, korea",
            "yangchun-gu seoul",
            "Tokyo, Japan",
            "my home",
            "",
            "gangnam",
            "Busan Jung-gu",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    } else {
        args
    };

    println!("{:<36} verdict", "profile location");
    println!("{}", "-".repeat(78));
    for text in &samples {
        let shown = if text.is_empty() {
            "(empty)"
        } else {
            text.as_str()
        };
        let verdict = match classifier.classify(text) {
            ProfileClass::WellDefined(id) => {
                let d = gazetteer.district(id);
                format!("KEEP   → {} {}", d.province.name_en(), d.name_en)
            }
            ProfileClass::Coordinates(p) => match gazetteer.resolve_point(p) {
                Some(id) => {
                    let d = gazetteer.district(id);
                    format!(
                        "KEEP   → coordinates in {} {}",
                        d.province.name_en(),
                        d.name_en
                    )
                }
                None => "REMOVE → coordinates outside Korea".to_string(),
            },
            ProfileClass::Insufficient(level) => format!("REMOVE → insufficient ({level:?})"),
            ProfileClass::Vague => "REMOVE → vague".to_string(),
            ProfileClass::Ambiguous(c) => format!("REMOVE → ambiguous ({} candidates)", c.len()),
            ProfileClass::Foreign => "REMOVE → foreign".to_string(),
            ProfileClass::Empty => "REMOVE → empty".to_string(),
        };
        println!("{shown:<36} {verdict}");
    }
}
