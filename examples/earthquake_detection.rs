//! Earthquake detection end to end: Toretter-style burst detection and
//! location estimation, with and without the paper's reliability weights.
//!
//! ```sh
//! cargo run --release --example earthquake_detection
//! ```

use stir::core::{PipelineInput, ProfileRow, RefinementPipeline, ReliabilityWeights, TweetRow};
use stir::eventdet::toretter::StreamTweet;
use stir::eventdet::{MeanEstimator, ObservationBuilder, Toretter};
use stir::geoindex::Point;
use stir::geokr::Gazetteer;
use stir::twitter_sim::datasets::{Dataset, DatasetSpec};
use stir::twitter_sim::event::{inject, EventScenario};

fn main() {
    let gazetteer = Gazetteer::load();
    let spec = DatasetSpec {
        n_users: 6_000,
        ..DatasetSpec::korean_paper()
    };
    let dataset = Dataset::generate(spec, &gazetteer, 7);

    // Learn the reliability weights from the dataset's own history.
    let pipeline = RefinementPipeline::with_defaults(&gazetteer);
    let result = pipeline.execute(
        dataset.users.iter().map(|u| ProfileRow {
            user: u.id.0,
            location_text: u.location_text.clone(),
        }),
        PipelineInput::rows(dataset.users.iter().flat_map(|u| {
            dataset
                .user_tweets(&gazetteer, u.id)
                .into_iter()
                .map(|t| TweetRow {
                    user: t.user.0,
                    tweet_id: t.id.0,
                    gps: t.gps,
                })
        })),
    );
    println!(
        "learned reliability weights from {} analysed users: {:?}",
        result.users.len(),
        ReliabilityWeights::from_cohort(&result.users, 0.02)
            .as_array()
            .map(|w| (w * 1000.0).round() / 1000.0)
    );

    // A quake hits southern Seoul at t = 50,000 s.
    let epicenter = Point::new(37.47, 127.02);
    let scenario = EventScenario::earthquake(epicenter, 50_000);
    let reports = inject(&scenario, &dataset, &gazetteer, 99);
    println!(
        "\n{} sensor reports injected around {epicenter}",
        reports.len()
    );

    // Build the stream the detector watches: background chatter + reports.
    let mut stream: Vec<StreamTweet> = Vec::new();
    for u in dataset.users.iter().take(500) {
        for t in dataset.user_tweets(&gazetteer, u.id) {
            stream.push(StreamTweet {
                user: t.user.0,
                timestamp: t.timestamp,
                text: t.text,
                gps: t.gps,
            });
        }
    }
    for r in &reports {
        stream.push(StreamTweet {
            user: r.tweet.user.0,
            timestamp: r.tweet.timestamp,
            text: r.tweet.text.clone(),
            gps: r.tweet.gps,
        });
    }
    stream.sort_by_key(|t| t.timestamp);

    // Detect twice: trusting every profile (baseline) vs weighted.
    let estimator = MeanEstimator;
    let toretter = Toretter::new("earthquake", &estimator);

    let mut baseline = ObservationBuilder::from_analysis(&gazetteer, &result, 0.02)
        .with_weight_profile(ReliabilityWeights::uniform());
    baseline.unknown_user_weight = 1.0;
    let weighted = ObservationBuilder::from_analysis(&gazetteer, &result, 0.02);

    for (label, builder) in [
        ("unweighted", &baseline),
        ("reliability-weighted", &weighted),
    ] {
        match toretter.detect(&stream, builder) {
            Some(alert) => {
                let delay = alert.alert_time.saturating_sub(scenario.start);
                println!(
                    "{label:>21}: alert within {delay} s, estimate {} — {:.1} km from the true epicenter ({} observations)",
                    alert.estimate,
                    epicenter.haversine_km(alert.estimate),
                    alert.n_observations
                );
            }
            None => println!("{label:>21}: no alert raised"),
        }
    }
}
