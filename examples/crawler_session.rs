//! Crawler session: walk the follower graph from a seed user through the
//! rate-limited API facade, the way the paper collected its 52k users.
//!
//! ```sh
//! cargo run --release --example crawler_session
//! ```

use stir::geokr::Gazetteer;
use stir::twitter_sim::api::RateLimit;
use stir::twitter_sim::datasets::{Dataset, DatasetSpec};
use stir::twitter_sim::{Crawler, TwitterApi};

fn main() {
    let gazetteer = Gazetteer::load();
    let spec = DatasetSpec {
        n_users: 10_000,
        ..DatasetSpec::korean_paper()
    };
    let dataset = Dataset::generate(spec, &gazetteer, 11);
    let seed = dataset.graph.best_seed();
    println!(
        "follower graph: {} users, {} edges; seeding from {} ({} followers)",
        dataset.graph.len(),
        dataset.graph.edge_count(),
        seed,
        dataset.graph.followers_of(seed).len()
    );

    // The 2011-era authenticated REST quota: 350 requests per hour.
    let api = TwitterApi::with_limit(&dataset, &gazetteer, RateLimit::rest_2011());
    let report = Crawler::new(&api).run(seed, usize::MAX);

    println!("\ncrawl finished:");
    println!("  users discovered     {:>8}", report.users.len());
    println!("  API requests         {:>8}", report.requests);
    println!("  rate-limit stalls    {:>8}", report.rate_limit_stalls);
    println!(
        "  simulated duration   {:>8.1} days",
        report.simulated_days()
    );
    println!(
        "\n(the paper: 'Due to the changed policy of Twitter, we collect the users with \
         crawler that explores the every followers of the given seed user' — at 350 req/h, \
         a 52k-user crawl takes weeks of wall-clock time; the simulation shows why.)"
    );
}
