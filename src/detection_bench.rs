//! Detection-quality benchmark: how well does the Toretter-style detector
//! do over many injected events and quiet control windows?
//!
//! The paper's Fig. 2 narrative reports one anecdote (an earthquake located
//! closely and alerted quickly). This harness turns that into a measured
//! protocol: N positive trials (event injected, did the detector fire? how
//! late? how far off?) and M negative trials (no event — false alarms?),
//! summarized as detection rate, false-alarm rate, latency and location
//! error.

use stir_core::ReliabilityWeights;
use stir_eventdet::toretter::{StreamTweet, Toretter};
use stir_eventdet::{LocationEstimator, ObservationBuilder};
use stir_geoindex::Point;
use stir_geokr::Gazetteer;
use stir_twitter_sim::datasets::Dataset;
use stir_twitter_sim::event::{inject, EventScenario};

/// Outcome of one trial.
#[derive(Clone, Copy, Debug)]
pub struct TrialOutcome {
    /// Whether this trial contained a real event.
    pub event_present: bool,
    /// Whether the detector raised an alert.
    pub detected: bool,
    /// Alert latency in seconds after the event (positive trials only).
    pub latency_secs: Option<u64>,
    /// Location error in km (positive, detected trials only).
    pub error_km: Option<f64>,
}

/// Aggregated benchmark results.
#[derive(Clone, Debug, Default)]
pub struct DetectionReport {
    /// All trial outcomes.
    pub trials: Vec<TrialOutcome>,
}

impl DetectionReport {
    /// Fraction of event trials that were detected.
    pub fn detection_rate(&self) -> f64 {
        let (hits, total) = self
            .trials
            .iter()
            .filter(|t| t.event_present)
            .fold((0u64, 0u64), |(h, n), t| (h + u64::from(t.detected), n + 1));
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Fraction of quiet trials that raised a (false) alert.
    pub fn false_alarm_rate(&self) -> f64 {
        let (fa, total) = self
            .trials
            .iter()
            .filter(|t| !t.event_present)
            .fold((0u64, 0u64), |(f, n), t| (f + u64::from(t.detected), n + 1));
        if total == 0 {
            0.0
        } else {
            fa as f64 / total as f64
        }
    }

    /// Mean alert latency over detected event trials.
    pub fn mean_latency_secs(&self) -> Option<f64> {
        let lats: Vec<f64> = self
            .trials
            .iter()
            .filter_map(|t| t.latency_secs)
            .map(|l| l as f64)
            .collect();
        if lats.is_empty() {
            None
        } else {
            Some(lats.iter().sum::<f64>() / lats.len() as f64)
        }
    }

    /// Mean location error over detected event trials.
    pub fn mean_error_km(&self) -> Option<f64> {
        let errs: Vec<f64> = self.trials.iter().filter_map(|t| t.error_km).collect();
        if errs.is_empty() {
            None
        } else {
            Some(errs.iter().sum::<f64>() / errs.len() as f64)
        }
    }
}

/// Builds the merged background+event stream for one trial.
fn build_stream(
    dataset: &Dataset,
    gazetteer: &Gazetteer,
    background_users: usize,
    scenario: Option<&EventScenario>,
    seed: u64,
) -> Vec<StreamTweet> {
    let mut stream: Vec<StreamTweet> = Vec::new();
    for u in dataset.users.iter().take(background_users) {
        for t in dataset.user_tweets(gazetteer, u.id) {
            stream.push(StreamTweet {
                user: t.user.0,
                timestamp: t.timestamp,
                text: t.text,
                gps: t.gps,
            });
        }
    }
    if let Some(sc) = scenario {
        for r in inject(sc, dataset, gazetteer, seed) {
            stream.push(StreamTweet {
                user: r.tweet.user.0,
                timestamp: r.tweet.timestamp,
                text: r.tweet.text.clone(),
                gps: r.tweet.gps,
            });
        }
    }
    stream.sort_by_key(|t| t.timestamp);
    stream
}

/// Runs the benchmark: one positive trial per `epicenters` entry, plus
/// `quiet_trials` negative controls, with the given estimator and
/// observation weighting.
#[allow(clippy::too_many_arguments)]
pub fn run_detection_benchmark(
    dataset: &Dataset,
    gazetteer: &Gazetteer,
    epicenters: &[(Point, u64)],
    quiet_trials: usize,
    background_users: usize,
    estimator: &dyn LocationEstimator,
    builder: &ObservationBuilder<'_>,
    seed: u64,
) -> DetectionReport {
    let mut report = DetectionReport::default();
    let toretter = Toretter::new("earthquake", estimator);

    for (i, &(epicenter, start)) in epicenters.iter().enumerate() {
        let scenario = EventScenario::earthquake(epicenter, start);
        let stream = build_stream(
            dataset,
            gazetteer,
            background_users,
            Some(&scenario),
            seed + i as u64,
        );
        match toretter.detect(&stream, builder) {
            Some(alert) => report.trials.push(TrialOutcome {
                event_present: true,
                detected: true,
                latency_secs: Some(alert.alert_time.saturating_sub(start)),
                error_km: Some(epicenter.haversine_km(alert.estimate)),
            }),
            None => report.trials.push(TrialOutcome {
                event_present: true,
                detected: false,
                latency_secs: None,
                error_km: None,
            }),
        }
    }
    for q in 0..quiet_trials {
        let stream = build_stream(
            dataset,
            gazetteer,
            background_users,
            None,
            seed + 1000 + q as u64,
        );
        let detected = toretter.detect(&stream, builder).is_some();
        report.trials.push(TrialOutcome {
            event_present: false,
            detected,
            latency_secs: None,
            error_km: None,
        });
    }
    report
}

/// Convenience: a full-trust observation builder over an analysed cohort.
pub fn uniform_builder<'g>(
    gazetteer: &'g Gazetteer,
    analysis: &stir_core::AnalysisResult,
) -> ObservationBuilder<'g> {
    let mut b = ObservationBuilder::from_analysis(gazetteer, analysis, 0.02)
        .with_weight_profile(ReliabilityWeights::uniform());
    b.unknown_user_weight = 1.0;
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use stir_core::{PipelineInput, ProfileRow, RefinementPipeline, TweetRow};
    use stir_eventdet::MeanEstimator;
    use stir_twitter_sim::datasets::DatasetSpec;

    #[test]
    fn benchmark_detects_events_without_false_alarms() {
        let gazetteer = Gazetteer::load();
        let dataset = Dataset::generate(
            DatasetSpec {
                n_users: 4_000,
                ..DatasetSpec::korean_paper()
            },
            &gazetteer,
            61,
        );
        let analysis = RefinementPipeline::with_defaults(&gazetteer).execute(
            dataset.users.iter().map(|u| ProfileRow {
                user: u.id.0,
                location_text: u.location_text.clone(),
            }),
            PipelineInput::rows(dataset.users.iter().flat_map(|u| {
                dataset
                    .user_tweets(&gazetteer, u.id)
                    .into_iter()
                    .map(|t| TweetRow {
                        user: t.user.0,
                        tweet_id: t.id.0,
                        gps: t.gps,
                    })
            })),
        );
        let builder = ObservationBuilder::from_analysis(&gazetteer, &analysis, 0.02);
        let est = MeanEstimator;
        let epicenters = [
            (Point::new(37.5, 127.0), 30_000u64),
            (Point::new(35.2, 129.0), 50_000u64),
        ];
        let report =
            run_detection_benchmark(&dataset, &gazetteer, &epicenters, 2, 500, &est, &builder, 9);
        assert_eq!(report.trials.len(), 4);
        assert!(
            report.detection_rate() >= 0.5,
            "rate {}",
            report.detection_rate()
        );
        assert_eq!(report.false_alarm_rate(), 0.0);
        if let Some(err) = report.mean_error_km() {
            assert!(err < 120.0, "error {err} km");
        }
        if let Some(lat) = report.mean_latency_secs() {
            assert!(lat < 1_800.0, "latency {lat} s");
        }
    }

    #[test]
    fn empty_report_rates() {
        let r = DetectionReport::default();
        assert_eq!(r.detection_rate(), 0.0);
        assert_eq!(r.false_alarm_rate(), 0.0);
        assert!(r.mean_latency_secs().is_none());
        assert!(r.mean_error_km().is_none());
    }
}
