//! Glue between the tweet store and the analysis pipeline.
//!
//! `stir-core` deliberately takes plain rows so it works on any data
//! source; `stir-tweetstore` deliberately knows nothing about the
//! analysis. The connection now lives in the pipeline itself:
//! [`RefinementPipeline::execute`] accepts a `&TweetStore` directly (the
//! store-block morsel source and scan-metrics fill moved into
//! `stir_core::pipeline`). This module keeps the store-specific
//! composition that has no core equivalent — pre-compacting to GPS
//! records before the run (what a production deployment would keep hot) —
//! plus a deprecated shim for the old free-function entry point.

use stir_core::{AnalysisResult, CollectionFunnel, ProfileRow, RefinementPipeline};
use stir_tweetstore::{gps_only, CompactionReport, TweetStore};

/// Runs the full pipeline with tweets streamed out of `store`.
#[deprecated(note = "use `pipeline.execute(profiles, store)` — the store is a pipeline input now")]
pub fn run_from_store<PI>(
    pipeline: &RefinementPipeline<'_>,
    profiles: PI,
    store: &TweetStore,
) -> AnalysisResult
where
    PI: IntoIterator<Item = ProfileRow>,
{
    pipeline.execute(profiles, store)
}

/// Compacts the store to GPS-only records, then runs the pipeline on the
/// compacted store. The funnel's tweet totals are patched to reflect the
/// *original* corpus (the compaction did stage 2 of the funnel early), and
/// the compaction report is returned alongside.
pub fn compact_then_run<PI>(
    pipeline: &RefinementPipeline<'_>,
    profiles: PI,
    store: &TweetStore,
) -> (AnalysisResult, CompactionReport)
where
    PI: IntoIterator<Item = ProfileRow>,
{
    let (gps_store, report) = gps_only(store);
    let mut result = pipeline.execute(profiles, &gps_store);
    // Restore the pre-compaction totals so the funnel reads like a
    // single-pass run over the full corpus.
    let funnel = CollectionFunnel {
        tweets_total: report.scanned,
        ..result.funnel
    };
    result.funnel = funnel;
    (result, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stir_core::{PipelineBuilder, TweetRow};
    use stir_geokr::Gazetteer;
    use stir_tweetstore::TweetRecord;
    use stir_twitter_sim::datasets::{Dataset, DatasetSpec};

    fn fixtures() -> (&'static Gazetteer, Dataset, TweetStore) {
        let g: &'static Gazetteer = Box::leak(Box::new(Gazetteer::load()));
        let dataset = Dataset::generate(
            DatasetSpec {
                n_users: 600,
                ..DatasetSpec::korean_paper()
            },
            g,
            77,
        );
        let mut store = TweetStore::new();
        dataset.for_each_tweet(g, |t| {
            store.append(&TweetRecord {
                id: t.id.0,
                user: t.user.0,
                timestamp: t.timestamp,
                gps: t.gps,
                text: t.text.clone(),
            });
        });
        (g, dataset, store)
    }

    fn profile_rows(dataset: &Dataset) -> Vec<ProfileRow> {
        dataset
            .users
            .iter()
            .map(|u| ProfileRow {
                user: u.id.0,
                location_text: u.location_text.clone(),
            })
            .collect()
    }

    #[test]
    fn store_execute_matches_direct_run() {
        let (g, dataset, store) = fixtures();
        let pipeline = RefinementPipeline::with_defaults(g);
        let rows: Vec<TweetRow> = dataset
            .users
            .iter()
            .flat_map(|u| {
                dataset.user_tweets(g, u.id).into_iter().map(|t| TweetRow {
                    user: t.user.0,
                    tweet_id: t.id.0,
                    gps: t.gps,
                })
            })
            .collect();
        let direct = pipeline.execute(profile_rows(&dataset), rows);
        let via_store = pipeline.execute(profile_rows(&dataset), &store);
        assert_eq!(direct.funnel, via_store.funnel);
        assert_eq!(direct.users.len(), via_store.users.len());
        for (a, b) in direct.users.iter().zip(&via_store.users) {
            assert_eq!(a.user, b.user);
            assert_eq!(a.matched_rank, b.matched_rank);
        }
        // The deprecated free function keeps forwarding to the same run.
        #[allow(deprecated)]
        let via_shim = run_from_store(&pipeline, profile_rows(&dataset), &store);
        assert_eq!(via_shim.funnel, via_store.funnel);
        assert_eq!(via_shim.users.len(), via_store.users.len());
    }

    #[test]
    fn store_execute_reports_scan_metrics() {
        let (g, dataset, store) = fixtures();
        let pipeline = RefinementPipeline::with_defaults(g);
        let result = pipeline.execute(profile_rows(&dataset), &store);
        let scan = result
            .metrics
            .scan
            .as_ref()
            .expect("store runs fill scan metrics");
        let stats = store.stats();
        assert_eq!(scan.records_stored, stats.records);
        assert_eq!(scan.headers_decoded, stats.records);
        assert_eq!(scan.records_yielded, stats.records);
        assert_eq!(scan.records_corrupt, 0);
        assert_eq!(scan.bytes_stored, stats.payload_bytes);
        // Header-only hand-off: the tweet text is never decoded, so the
        // decode volume must fall short of the stored volume by at least
        // the corpus's total text size.
        assert!(
            scan.bytes_decoded < scan.bytes_stored,
            "decoded {} stored {}",
            scan.bytes_decoded,
            scan.bytes_stored
        );
        // Direct (row-fed) runs leave the slot empty.
        let direct = pipeline.execute(profile_rows(&dataset), Vec::<TweetRow>::new());
        assert!(direct.metrics.scan.is_none());
    }

    #[test]
    fn fused_store_run_is_identical_to_staged_store_run() {
        let (g, dataset, store) = fixtures();
        let fused = RefinementPipeline::with_defaults(g);
        assert!(fused.config().is_fused(), "fused engine is the default");
        let staged = PipelineBuilder::new(g).staged().build().unwrap();
        let a = fused.execute(profile_rows(&dataset), &store);
        let b = staged.execute(profile_rows(&dataset), &store);
        assert_eq!(a.funnel, b.funnel);
        assert_eq!(a.users.len(), b.users.len());
        for (x, y) in a.users.iter().zip(&b.users) {
            assert_eq!(x.user, y.user);
            assert_eq!(x.entries, y.entries);
            assert_eq!(x.matched_rank, y.matched_rank);
        }
        // The fused store run reports the engine detail and a scan whose
        // decode count matches the store exactly.
        let exec = a.metrics.exec.as_ref().expect("fused runs fill exec");
        assert_eq!(exec.rows_in, store.stats().records);
        assert_eq!(exec.kept_probes, a.funnel.tweets_with_gps);
        let scan = a.metrics.scan.as_ref().expect("store runs fill scan");
        assert_eq!(scan.headers_decoded, store.stats().records);
        // Staged store runs leave the exec slot empty.
        assert!(b.metrics.exec.is_none());
    }

    #[test]
    fn compacted_run_agrees_and_reports_savings() {
        let (g, dataset, store) = fixtures();
        let pipeline = RefinementPipeline::with_defaults(g);
        let full = pipeline.execute(profile_rows(&dataset), &store);
        let (compacted, report) = compact_then_run(&pipeline, profile_rows(&dataset), &store);
        // Same cohort, same groups, same tweet totals after patching.
        assert_eq!(full.users.len(), compacted.users.len());
        assert_eq!(full.funnel.tweets_total, compacted.funnel.tweets_total);
        assert_eq!(
            full.funnel.tweets_with_gps,
            compacted.funnel.tweets_with_gps
        );
        assert_eq!(full.funnel.users_final, compacted.funnel.users_final);
        assert!(report.space_saved() > 0.5, "saved {}", report.space_saved());
    }
}
