//! Glue between the tweet store and the analysis pipeline.
//!
//! `stir-core` deliberately takes plain rows so it works on any data
//! source; `stir-tweetstore` deliberately knows nothing about the
//! analysis. This module connects them: run the refinement pipeline
//! straight off a stored corpus, optionally pre-compacting to GPS records
//! (which is what a production deployment would keep hot).

use stir_core::{AnalysisResult, CollectionFunnel, ProfileRow, RefinementPipeline, TweetRow};
use stir_tweetstore::{gps_only, CompactionReport, TweetStore};

/// Runs the full pipeline with tweets scanned out of `store`.
pub fn run_from_store<PI>(
    pipeline: &RefinementPipeline<'_>,
    profiles: PI,
    store: &TweetStore,
) -> AnalysisResult
where
    PI: IntoIterator<Item = ProfileRow>,
{
    let tweets = store.scan().filter_map(|r| r.ok()).map(|r| TweetRow {
        user: r.user,
        tweet_id: r.id,
        gps: r.gps,
    });
    pipeline.run(profiles, tweets)
}

/// Compacts the store to GPS-only records, then runs the pipeline on the
/// compacted store. The funnel's tweet totals are patched to reflect the
/// *original* corpus (the compaction did stage 2 of the funnel early), and
/// the compaction report is returned alongside.
pub fn compact_then_run<PI>(
    pipeline: &RefinementPipeline<'_>,
    profiles: PI,
    store: &TweetStore,
) -> (AnalysisResult, CompactionReport)
where
    PI: IntoIterator<Item = ProfileRow>,
{
    let (gps_store, report) = gps_only(store);
    let mut result = run_from_store(pipeline, profiles, &gps_store);
    // Restore the pre-compaction totals so the funnel reads like a
    // single-pass run over the full corpus.
    let funnel = CollectionFunnel {
        tweets_total: report.scanned,
        ..result.funnel
    };
    result.funnel = funnel;
    (result, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stir_geokr::Gazetteer;
    use stir_tweetstore::TweetRecord;
    use stir_twitter_sim::datasets::{Dataset, DatasetSpec};

    fn fixtures() -> (&'static Gazetteer, Dataset, TweetStore) {
        let g: &'static Gazetteer = Box::leak(Box::new(Gazetteer::load()));
        let dataset = Dataset::generate(
            DatasetSpec {
                n_users: 600,
                ..DatasetSpec::korean_paper()
            },
            g,
            77,
        );
        let mut store = TweetStore::new();
        dataset.for_each_tweet(g, |t| {
            store.append(&TweetRecord {
                id: t.id.0,
                user: t.user.0,
                timestamp: t.timestamp,
                gps: t.gps,
                text: t.text.clone(),
            });
        });
        (g, dataset, store)
    }

    fn profile_rows(dataset: &Dataset) -> Vec<ProfileRow> {
        dataset
            .users
            .iter()
            .map(|u| ProfileRow {
                user: u.id.0,
                location_text: u.location_text.clone(),
            })
            .collect()
    }

    #[test]
    fn store_run_matches_direct_run() {
        let (g, dataset, store) = fixtures();
        let pipeline = RefinementPipeline::with_defaults(g);
        let direct = pipeline.run(
            profile_rows(&dataset),
            dataset.users.iter().flat_map(|u| {
                dataset.user_tweets(g, u.id).into_iter().map(|t| TweetRow {
                    user: t.user.0,
                    tweet_id: t.id.0,
                    gps: t.gps,
                })
            }),
        );
        let via_store = run_from_store(&pipeline, profile_rows(&dataset), &store);
        assert_eq!(direct.funnel, via_store.funnel);
        assert_eq!(direct.users.len(), via_store.users.len());
        for (a, b) in direct.users.iter().zip(&via_store.users) {
            assert_eq!(a.user, b.user);
            assert_eq!(a.matched_rank, b.matched_rank);
        }
    }

    #[test]
    fn compacted_run_agrees_and_reports_savings() {
        let (g, dataset, store) = fixtures();
        let pipeline = RefinementPipeline::with_defaults(g);
        let full = run_from_store(&pipeline, profile_rows(&dataset), &store);
        let (compacted, report) = compact_then_run(&pipeline, profile_rows(&dataset), &store);
        // Same cohort, same groups, same tweet totals after patching.
        assert_eq!(full.users.len(), compacted.users.len());
        assert_eq!(full.funnel.tweets_total, compacted.funnel.tweets_total);
        assert_eq!(
            full.funnel.tweets_with_gps,
            compacted.funnel.tweets_with_gps
        );
        assert_eq!(full.funnel.users_final, compacted.funnel.users_final);
        assert!(report.space_saved() > 0.5, "saved {}", report.space_saved());
    }
}
