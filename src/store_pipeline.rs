//! Glue between the tweet store and the analysis pipeline.
//!
//! `stir-core` deliberately takes plain rows so it works on any data
//! source; `stir-tweetstore` deliberately knows nothing about the
//! analysis. This module connects them: run the refinement pipeline
//! straight off a stored corpus, optionally pre-compacting to GPS records
//! (which is what a production deployment would keep hot).

use std::cell::Cell;

use stir_core::{AnalysisResult, CollectionFunnel, ProfileRow, RefinementPipeline, TweetRow};
use stir_tweetstore::{gps_only, CompactionReport, ScanMetrics, TweetStore};

/// Runs the full pipeline with tweets streamed out of `store`.
///
/// The hand-off is zero-copy per stored record: the scan decodes only the
/// fixed-field header of each record into a `Copy` [`TweetRow`] — the
/// tweet text (which the pipeline never reads) stays untouched in the
/// segment buffers, so no per-record heap allocation happens on this
/// path. Scan statistics land in the result's
/// [`PipelineMetrics::scan`](stir_core::PipelineMetrics) slot.
pub fn run_from_store<PI>(
    pipeline: &RefinementPipeline<'_>,
    profiles: PI,
    store: &TweetStore,
) -> AnalysisResult
where
    PI: IntoIterator<Item = ProfileRow>,
{
    let headers = Cell::new(0u64);
    let header_bytes = Cell::new(0u64);
    let corrupt = Cell::new(0u64);
    let tweets = store.scan_views().filter_map(|r| match r {
        Ok(v) => {
            headers.set(headers.get() + 1);
            header_bytes.set(header_bytes.get() + v.header_len() as u64);
            Some(TweetRow {
                user: v.header.user,
                tweet_id: v.header.id,
                gps: v.header.gps,
            })
        }
        Err(_) => {
            corrupt.set(corrupt.get() + 1);
            None
        }
    });
    let mut result = pipeline.run(profiles, tweets);
    let stats = store.stats();
    result.metrics.scan = Some(ScanMetrics {
        segments_total: stats.segments as u64,
        segments_pruned: 0,
        records_stored: stats.records,
        records_pruned: 0,
        headers_decoded: headers.get(),
        records_rejected: 0,
        records_yielded: headers.get(),
        records_corrupt: corrupt.get(),
        bytes_stored: stats.payload_bytes,
        bytes_decoded: header_bytes.get(),
        threads: 1,
        blocks_per_thread: vec![stats.segments as u64],
        // The scan is interleaved with intake: the intake stage's wall
        // time is the closest honest measure of it.
        wall: result.metrics.stages.tweet_intake,
    });
    result
}

/// Compacts the store to GPS-only records, then runs the pipeline on the
/// compacted store. The funnel's tweet totals are patched to reflect the
/// *original* corpus (the compaction did stage 2 of the funnel early), and
/// the compaction report is returned alongside.
pub fn compact_then_run<PI>(
    pipeline: &RefinementPipeline<'_>,
    profiles: PI,
    store: &TweetStore,
) -> (AnalysisResult, CompactionReport)
where
    PI: IntoIterator<Item = ProfileRow>,
{
    let (gps_store, report) = gps_only(store);
    let mut result = run_from_store(pipeline, profiles, &gps_store);
    // Restore the pre-compaction totals so the funnel reads like a
    // single-pass run over the full corpus.
    let funnel = CollectionFunnel {
        tweets_total: report.scanned,
        ..result.funnel
    };
    result.funnel = funnel;
    (result, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stir_geokr::Gazetteer;
    use stir_tweetstore::TweetRecord;
    use stir_twitter_sim::datasets::{Dataset, DatasetSpec};

    fn fixtures() -> (&'static Gazetteer, Dataset, TweetStore) {
        let g: &'static Gazetteer = Box::leak(Box::new(Gazetteer::load()));
        let dataset = Dataset::generate(
            DatasetSpec {
                n_users: 600,
                ..DatasetSpec::korean_paper()
            },
            g,
            77,
        );
        let mut store = TweetStore::new();
        dataset.for_each_tweet(g, |t| {
            store.append(&TweetRecord {
                id: t.id.0,
                user: t.user.0,
                timestamp: t.timestamp,
                gps: t.gps,
                text: t.text.clone(),
            });
        });
        (g, dataset, store)
    }

    fn profile_rows(dataset: &Dataset) -> Vec<ProfileRow> {
        dataset
            .users
            .iter()
            .map(|u| ProfileRow {
                user: u.id.0,
                location_text: u.location_text.clone(),
            })
            .collect()
    }

    #[test]
    fn store_run_matches_direct_run() {
        let (g, dataset, store) = fixtures();
        let pipeline = RefinementPipeline::with_defaults(g);
        let direct = pipeline.run(
            profile_rows(&dataset),
            dataset.users.iter().flat_map(|u| {
                dataset.user_tweets(g, u.id).into_iter().map(|t| TweetRow {
                    user: t.user.0,
                    tweet_id: t.id.0,
                    gps: t.gps,
                })
            }),
        );
        let via_store = run_from_store(&pipeline, profile_rows(&dataset), &store);
        assert_eq!(direct.funnel, via_store.funnel);
        assert_eq!(direct.users.len(), via_store.users.len());
        for (a, b) in direct.users.iter().zip(&via_store.users) {
            assert_eq!(a.user, b.user);
            assert_eq!(a.matched_rank, b.matched_rank);
        }
    }

    #[test]
    fn store_run_reports_scan_metrics() {
        let (g, dataset, store) = fixtures();
        let pipeline = RefinementPipeline::with_defaults(g);
        let result = run_from_store(&pipeline, profile_rows(&dataset), &store);
        let scan = result
            .metrics
            .scan
            .as_ref()
            .expect("store runs fill scan metrics");
        let stats = store.stats();
        assert_eq!(scan.records_stored, stats.records);
        assert_eq!(scan.headers_decoded, stats.records);
        assert_eq!(scan.records_yielded, stats.records);
        assert_eq!(scan.records_corrupt, 0);
        assert_eq!(scan.bytes_stored, stats.payload_bytes);
        // Header-only hand-off: the tweet text is never decoded, so the
        // decode volume must fall short of the stored volume by at least
        // the corpus's total text size.
        assert!(
            scan.bytes_decoded < scan.bytes_stored,
            "decoded {} stored {}",
            scan.bytes_decoded,
            scan.bytes_stored
        );
        // Direct (row-fed) runs leave the slot empty.
        let direct = pipeline.run(profile_rows(&dataset), std::iter::empty::<TweetRow>());
        assert!(direct.metrics.scan.is_none());
    }

    #[test]
    fn compacted_run_agrees_and_reports_savings() {
        let (g, dataset, store) = fixtures();
        let pipeline = RefinementPipeline::with_defaults(g);
        let full = run_from_store(&pipeline, profile_rows(&dataset), &store);
        let (compacted, report) = compact_then_run(&pipeline, profile_rows(&dataset), &store);
        // Same cohort, same groups, same tweet totals after patching.
        assert_eq!(full.users.len(), compacted.users.len());
        assert_eq!(full.funnel.tweets_total, compacted.funnel.tweets_total);
        assert_eq!(
            full.funnel.tweets_with_gps,
            compacted.funnel.tweets_with_gps
        );
        assert_eq!(full.funnel.users_final, compacted.funnel.users_final);
        assert!(report.space_saved() > 0.5, "saved {}", report.space_saved());
    }
}
