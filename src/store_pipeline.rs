//! Glue between the tweet store and the analysis pipeline.
//!
//! `stir-core` deliberately takes plain rows so it works on any data
//! source; `stir-tweetstore` deliberately knows nothing about the
//! analysis. This module connects them: run the refinement pipeline
//! straight off a stored corpus, optionally pre-compacting to GPS records
//! (which is what a production deployment would keep hot).

use std::sync::atomic::{AtomicU64, Ordering};

use stir_core::{
    AnalysisResult, CollectionFunnel, ColumnBatch, MorselSource, ProfileRow, RefinementPipeline,
    TweetRow,
};
use stir_tweetstore::{gps_only, CompactionReport, HeaderBlocks, ScanMetrics, TweetStore};

/// [`HeaderBlocks`] as a [`MorselSource`]: store blocks feed the fused
/// engine directly — each decoded header's fields go straight into the
/// morsel's columns (no row value of any shape in between), and the
/// block's slot-position ordinals are exactly the input ordinals the
/// engine's determinism argument needs.
struct StoreSource<'s> {
    blocks: HeaderBlocks<'s>,
}

impl MorselSource for StoreSource<'_> {
    fn next_morsel(&self, buf: &mut ColumnBatch) -> Option<u64> {
        buf.clear();
        self.blocks
            .next_block_headers(|h| buf.push(h.user, h.timestamp as i64, h.gps))
    }

    fn morsel_rows(&self) -> usize {
        self.blocks.block_records()
    }
}

/// Runs the full pipeline with tweets streamed out of `store`.
///
/// The hand-off is zero-copy per stored record: only the fixed-field
/// header of each record decodes into a `Copy` [`TweetRow`] — the tweet
/// text (which the pipeline never reads) stays untouched in the segment
/// buffers, so no per-record heap allocation happens on this path. On the
/// fused engine (the default) store blocks *are* the morsels: pipeline
/// workers pull blocks concurrently and rows go straight from header
/// decode to geocode to grouped keys, with no intermediate row vector.
/// The staged reference path streams rows through a serial iterator
/// instead. Scan statistics land in the result's
/// [`PipelineMetrics::scan`](stir_core::PipelineMetrics) slot either way.
pub fn run_from_store<PI>(
    pipeline: &RefinementPipeline<'_>,
    profiles: PI,
    store: &TweetStore,
) -> AnalysisResult
where
    PI: IntoIterator<Item = ProfileRow>,
{
    let stats = store.stats();
    if pipeline.config().fused {
        let source = StoreSource {
            blocks: HeaderBlocks::new(store, pipeline.config().effective_morsel_rows()),
        };
        let mut result = pipeline.run_from_source(profiles, &source);
        let exec = result.metrics.exec.as_ref();
        result.metrics.scan = Some(ScanMetrics {
            segments_total: stats.segments as u64,
            segments_pruned: 0,
            records_stored: stats.records,
            records_pruned: 0,
            headers_decoded: source.blocks.headers_decoded(),
            records_rejected: 0,
            records_yielded: source.blocks.headers_decoded(),
            records_corrupt: source.blocks.records_corrupt(),
            bytes_stored: stats.payload_bytes,
            bytes_decoded: source.blocks.bytes_decoded(),
            threads: exec.map_or(1, |e| e.threads),
            blocks_per_thread: exec.map_or_else(Vec::new, |e| e.morsels_per_thread.clone()),
            // The scan is fused into the pass: the filter operator's time
            // is the closest honest measure of it.
            wall: result.metrics.stages.tweet_intake,
        });
        return result;
    }
    let headers = AtomicU64::new(0);
    let header_bytes = AtomicU64::new(0);
    let corrupt = AtomicU64::new(0);
    let tweets = store.scan_views().filter_map(|r| match r {
        Ok(v) => {
            headers.fetch_add(1, Ordering::Relaxed);
            header_bytes.fetch_add(v.header_len() as u64, Ordering::Relaxed);
            Some(TweetRow {
                user: v.header.user,
                tweet_id: v.header.id,
                gps: v.header.gps,
            })
        }
        Err(_) => {
            corrupt.fetch_add(1, Ordering::Relaxed);
            None
        }
    });
    let mut result = pipeline.run(profiles, tweets);
    result.metrics.scan = Some(ScanMetrics {
        segments_total: stats.segments as u64,
        segments_pruned: 0,
        records_stored: stats.records,
        records_pruned: 0,
        headers_decoded: headers.load(Ordering::Relaxed),
        records_rejected: 0,
        records_yielded: headers.load(Ordering::Relaxed),
        records_corrupt: corrupt.load(Ordering::Relaxed),
        bytes_stored: stats.payload_bytes,
        bytes_decoded: header_bytes.load(Ordering::Relaxed),
        threads: 1,
        blocks_per_thread: vec![stats.segments as u64],
        // The scan is interleaved with intake: the intake stage's wall
        // time is the closest honest measure of it.
        wall: result.metrics.stages.tweet_intake,
    });
    result
}

/// Compacts the store to GPS-only records, then runs the pipeline on the
/// compacted store. The funnel's tweet totals are patched to reflect the
/// *original* corpus (the compaction did stage 2 of the funnel early), and
/// the compaction report is returned alongside.
pub fn compact_then_run<PI>(
    pipeline: &RefinementPipeline<'_>,
    profiles: PI,
    store: &TweetStore,
) -> (AnalysisResult, CompactionReport)
where
    PI: IntoIterator<Item = ProfileRow>,
{
    let (gps_store, report) = gps_only(store);
    let mut result = run_from_store(pipeline, profiles, &gps_store);
    // Restore the pre-compaction totals so the funnel reads like a
    // single-pass run over the full corpus.
    let funnel = CollectionFunnel {
        tweets_total: report.scanned,
        ..result.funnel
    };
    result.funnel = funnel;
    (result, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stir_geokr::Gazetteer;
    use stir_tweetstore::TweetRecord;
    use stir_twitter_sim::datasets::{Dataset, DatasetSpec};

    fn fixtures() -> (&'static Gazetteer, Dataset, TweetStore) {
        let g: &'static Gazetteer = Box::leak(Box::new(Gazetteer::load()));
        let dataset = Dataset::generate(
            DatasetSpec {
                n_users: 600,
                ..DatasetSpec::korean_paper()
            },
            g,
            77,
        );
        let mut store = TweetStore::new();
        dataset.for_each_tweet(g, |t| {
            store.append(&TweetRecord {
                id: t.id.0,
                user: t.user.0,
                timestamp: t.timestamp,
                gps: t.gps,
                text: t.text.clone(),
            });
        });
        (g, dataset, store)
    }

    fn profile_rows(dataset: &Dataset) -> Vec<ProfileRow> {
        dataset
            .users
            .iter()
            .map(|u| ProfileRow {
                user: u.id.0,
                location_text: u.location_text.clone(),
            })
            .collect()
    }

    #[test]
    fn store_run_matches_direct_run() {
        let (g, dataset, store) = fixtures();
        let pipeline = RefinementPipeline::with_defaults(g);
        let direct = pipeline.run(
            profile_rows(&dataset),
            dataset.users.iter().flat_map(|u| {
                dataset.user_tweets(g, u.id).into_iter().map(|t| TweetRow {
                    user: t.user.0,
                    tweet_id: t.id.0,
                    gps: t.gps,
                })
            }),
        );
        let via_store = run_from_store(&pipeline, profile_rows(&dataset), &store);
        assert_eq!(direct.funnel, via_store.funnel);
        assert_eq!(direct.users.len(), via_store.users.len());
        for (a, b) in direct.users.iter().zip(&via_store.users) {
            assert_eq!(a.user, b.user);
            assert_eq!(a.matched_rank, b.matched_rank);
        }
    }

    #[test]
    fn store_run_reports_scan_metrics() {
        let (g, dataset, store) = fixtures();
        let pipeline = RefinementPipeline::with_defaults(g);
        let result = run_from_store(&pipeline, profile_rows(&dataset), &store);
        let scan = result
            .metrics
            .scan
            .as_ref()
            .expect("store runs fill scan metrics");
        let stats = store.stats();
        assert_eq!(scan.records_stored, stats.records);
        assert_eq!(scan.headers_decoded, stats.records);
        assert_eq!(scan.records_yielded, stats.records);
        assert_eq!(scan.records_corrupt, 0);
        assert_eq!(scan.bytes_stored, stats.payload_bytes);
        // Header-only hand-off: the tweet text is never decoded, so the
        // decode volume must fall short of the stored volume by at least
        // the corpus's total text size.
        assert!(
            scan.bytes_decoded < scan.bytes_stored,
            "decoded {} stored {}",
            scan.bytes_decoded,
            scan.bytes_stored
        );
        // Direct (row-fed) runs leave the slot empty.
        let direct = pipeline.run(profile_rows(&dataset), std::iter::empty::<TweetRow>());
        assert!(direct.metrics.scan.is_none());
    }

    #[test]
    fn fused_store_run_is_identical_to_staged_store_run() {
        let (g, dataset, store) = fixtures();
        let fused = RefinementPipeline::with_defaults(g);
        assert!(fused.config().fused, "fused engine is the default");
        let staged = RefinementPipeline::new(
            g,
            stir_core::PipelineConfig {
                fused: false,
                ..Default::default()
            },
        );
        let a = run_from_store(&fused, profile_rows(&dataset), &store);
        let b = run_from_store(&staged, profile_rows(&dataset), &store);
        assert_eq!(a.funnel, b.funnel);
        assert_eq!(a.users.len(), b.users.len());
        for (x, y) in a.users.iter().zip(&b.users) {
            assert_eq!(x.user, y.user);
            assert_eq!(x.entries, y.entries);
            assert_eq!(x.matched_rank, y.matched_rank);
        }
        // The fused store run reports the engine detail and a scan whose
        // decode count matches the store exactly.
        let exec = a.metrics.exec.as_ref().expect("fused runs fill exec");
        assert_eq!(exec.rows_in, store.stats().records);
        assert_eq!(exec.kept_probes, a.funnel.tweets_with_gps);
        let scan = a.metrics.scan.as_ref().expect("store runs fill scan");
        assert_eq!(scan.headers_decoded, store.stats().records);
        // Staged store runs leave the exec slot empty.
        assert!(b.metrics.exec.is_none());
    }

    #[test]
    fn compacted_run_agrees_and_reports_savings() {
        let (g, dataset, store) = fixtures();
        let pipeline = RefinementPipeline::with_defaults(g);
        let full = run_from_store(&pipeline, profile_rows(&dataset), &store);
        let (compacted, report) = compact_then_run(&pipeline, profile_rows(&dataset), &store);
        // Same cohort, same groups, same tweet totals after patching.
        assert_eq!(full.users.len(), compacted.users.len());
        assert_eq!(full.funnel.tweets_total, compacted.funnel.tweets_total);
        assert_eq!(
            full.funnel.tweets_with_gps,
            compacted.funnel.tweets_with_gps
        );
        assert_eq!(full.funnel.users_final, compacted.funnel.users_final);
        assert!(report.space_saved() > 0.5, "saved {}", report.space_saved());
    }
}
