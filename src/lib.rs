//! # STIR — Spatial aTtribute Information Reliability for Twitter
//!
//! Façade crate re-exporting the whole workspace. See the repository README
//! and `DESIGN.md` for the architecture, and the `examples/` directory for
//! runnable entry points.

#![warn(missing_docs)]

pub mod detection_bench;
pub mod store_pipeline;

/// One-stop imports for the common workflow: generate → refine → group →
/// weight → estimate.
pub mod prelude {
    pub use stir_core::{
        AnalysisResult, AnalysisSession, DurableSession, GroupTable, GroupedUser, PipelineBuilder,
        PipelineConfig, PipelineInput, ProfileRow, RefinementPipeline, ReliabilityWeights,
        TopKGroup, TweetRow,
    };
    pub use stir_eventdet::{
        KalmanEstimator, LocationEstimator, MeanEstimator, MedianEstimator, Observation,
        ObservationBuilder, ParticleEstimator, Toretter,
    };
    pub use stir_geoindex::{BBox, Point};
    pub use stir_geokr::{
        BackendChoice, BackendTraffic, DistrictId, FaultPlan, Gazetteer, GeocodeError, Geocoder,
        GeocoderBuilder, Province, ResiliencePolicy, ResilientGeocoder, ReverseGeocoder,
    };
    pub use stir_textgeo::{ProfileClass, ProfileClassifier};
    pub use stir_tweetstore::{Query, TweetRecord, TweetStore};
    pub use stir_twitter_sim::datasets::{Dataset, DatasetSpec};
}

pub use stir_core as core;
pub use stir_eventdet as eventdet;
pub use stir_geoindex as geoindex;
pub use stir_geokr as geokr;
pub use stir_textgeo as textgeo;
pub use stir_tweetstore as tweetstore;
pub use stir_twitter_sim as twitter_sim;
