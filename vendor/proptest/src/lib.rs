//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the slice of proptest its test suites use: the [`proptest!`] macro,
//! [`Strategy`] with `prop_map`, range and regex-literal strategies,
//! `any::<T>()`, `prop::collection::vec`, `prop::option::of`, and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from upstream, deliberate for this workspace:
//! * cases are generated from a seed derived from the test name, so runs
//!   are deterministic and reproducible without a regression file;
//! * there is **no shrinking** — a failure reports the case number and the
//!   assertion message instead of a minimized input;
//! * the regex-literal strategy supports the subset the suites use:
//!   `\PC` (printable char) and `[...]` classes with ranges, each followed
//!   by a `{min,max}` quantifier, concatenated.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed test case, produced by `prop_assert!` and friends.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

/// The per-test deterministic random source.
#[derive(Clone, Debug)]
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// A runner seeded from the test's identity (file + name), so each test
    /// sees a stable stream across runs.
    pub fn for_test(file: &str, name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in file.bytes().chain(name.bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            rng: StdRng::seed_from_u64(h),
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.inner.sample(runner))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, runner: &mut TestRunner) -> S::Value {
        (**self).sample(runner)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(runner),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> Self {
                runner.rng().gen::<$t>()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

/// The strategy of all values of `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ---------------------------------------------------------------------------
// Regex-literal string strategies (the `"[a-z]{0,12}"` form).
// ---------------------------------------------------------------------------

/// One parsed element of a regex-literal pattern.
#[derive(Clone, Debug)]
struct PatternPart {
    /// Candidate character ranges (inclusive).
    ranges: Vec<(char, char)>,
    min: usize,
    max: usize,
}

/// A compiled regex-literal strategy over the supported subset.
#[derive(Clone, Debug)]
pub struct StringPattern {
    parts: Vec<PatternPart>,
}

/// Printable-character pool for `\PC`: mostly ASCII printable, with some
/// Hangul, accented Latin, and other non-ASCII printables mixed in so
/// Unicode paths get exercised.
const PRINTABLE_EXTRA: &[(char, char)] = &[
    ('가', '힣'),
    ('À', 'ÿ'),
    ('Α', 'ω'),
    ('一', '十'),
    ('！', '～'),
];

fn parse_pattern(pattern: &str) -> StringPattern {
    let mut parts = Vec::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let ranges: Vec<(char, char)> = if chars[i] == '\\' {
            // Only `\PC` (printable char) is supported.
            assert!(
                i + 2 < chars.len() && chars[i + 1] == 'P' && chars[i + 2] == 'C',
                "unsupported escape in pattern {pattern:?}"
            );
            i += 3;
            let mut r = vec![(' ', '~'), (' ', '~'), (' ', '~')]; // weight ASCII 3x
            r.extend_from_slice(PRINTABLE_EXTRA);
            r
        } else if chars[i] == '[' {
            let close = chars[i + 1..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| p + i + 1)
                .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"));
            let class = &chars[i + 1..close];
            i = close + 1;
            let mut r = Vec::new();
            let mut j = 0;
            while j < class.len() {
                if j + 2 < class.len() && class[j + 1] == '-' {
                    r.push((class[j], class[j + 2]));
                    j += 3;
                } else {
                    r.push((class[j], class[j]));
                    j += 1;
                }
            }
            r
        } else {
            let c = chars[i];
            i += 1;
            vec![(c, c)]
        };
        // Optional {min,max} quantifier; default exactly-one.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i + 1..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| p + i + 1)
                .unwrap_or_else(|| panic!("unclosed quantifier in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad quantifier"),
                    hi.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        parts.push(PatternPart { ranges, min, max });
    }
    StringPattern { parts }
}

impl Strategy for StringPattern {
    type Value = String;

    fn sample(&self, runner: &mut TestRunner) -> String {
        let mut out = String::new();
        for part in &self.parts {
            let n = runner.rng().gen_range(part.min..=part.max);
            for _ in 0..n {
                let (lo, hi) = part.ranges[runner.rng().gen_range(0..part.ranges.len())];
                // Rejection-sample the surrogate gap.
                loop {
                    let v = runner.rng().gen_range(lo as u32..=hi as u32);
                    if let Some(c) = char::from_u32(v) {
                        out.push(c);
                        break;
                    }
                }
            }
        }
        out
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, runner: &mut TestRunner) -> String {
        parse_pattern(self).sample(runner)
    }
}

impl Strategy for String {
    type Value = String;

    fn sample(&self, runner: &mut TestRunner) -> String {
        parse_pattern(self).sample(runner)
    }
}

/// Sub-modules mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRunner};
        use rand::Rng;

        /// Size argument for [`vec`]: a range of lengths.
        pub trait SizeRange {
            /// Draws a length.
            fn sample_len(&self, runner: &mut TestRunner) -> usize;
        }

        impl SizeRange for std::ops::Range<usize> {
            fn sample_len(&self, runner: &mut TestRunner) -> usize {
                runner.rng().gen_range(self.clone())
            }
        }

        impl SizeRange for std::ops::RangeInclusive<usize> {
            fn sample_len(&self, runner: &mut TestRunner) -> usize {
                runner.rng().gen_range(self.clone())
            }
        }

        impl SizeRange for usize {
            fn sample_len(&self, _runner: &mut TestRunner) -> usize {
                *self
            }
        }

        /// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
        #[derive(Clone, Debug)]
        pub struct VecStrategy<S, R> {
            element: S,
            size: R,
        }

        /// Vectors of `element` values with a length in `size`.
        pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
            VecStrategy { element, size }
        }

        impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
            type Value = Vec<S::Value>;

            fn sample(&self, runner: &mut TestRunner) -> Vec<S::Value> {
                let n = self.size.sample_len(runner);
                (0..n).map(|_| self.element.sample(runner)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::{Strategy, TestRunner};
        use rand::Rng;

        /// Strategy for `Option<S::Value>`, `Some` half the time.
        #[derive(Clone, Debug)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// `None` or `Some(value)` with equal probability.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn sample(&self, runner: &mut TestRunner) -> Option<S::Value> {
                if runner.rng().gen_bool(0.5) {
                    Some(self.inner.sample(runner))
                } else {
                    None
                }
            }
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}: {}",
                a,
                b,
                format!($($fmt)*)
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                a, b
            )));
        }
    }};
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::for_test(file!(), stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut runner);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_parser_handles_the_suite_subset() {
        let mut runner = crate::TestRunner::for_test("lib", "parser");
        for pattern in ["\\PC{0,200}", "[a-z]{0,12}", "[가-힣a-z0-9 ,/.-]{0,40}"] {
            for _ in 0..200 {
                let s = crate::Strategy::sample(&pattern, &mut runner);
                assert!(s.chars().count() <= 200, "{s:?} too long for {pattern}");
            }
        }
        let s = crate::Strategy::sample(&"[a-c]{5,5}", &mut runner);
        assert_eq!(s.len(), 5);
        assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
    }

    #[test]
    fn printable_strategy_has_no_control_chars() {
        let mut runner = crate::TestRunner::for_test("lib", "printable");
        for _ in 0..500 {
            let s = crate::Strategy::sample(&"\\PC{0,60}", &mut runner);
            assert!(!s.chars().any(|c| c.is_control()), "{s:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_and_strategies_work(
            x in 0u64..100,
            f in -1.0f64..1.0,
            v in prop::collection::vec(any::<u8>(), 0..10),
            o in prop::option::of(0usize..=3),
            s in "[a-z]{1,4}",
        ) {
            prop_assert!(x < 100);
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!(v.len() < 10);
            if let Some(n) = o {
                prop_assert!(n <= 3, "n was {}", n);
            }
            prop_assert_ne!(s.len(), 0);
            prop_assert_eq!(s.len(), s.chars().count());
        }

        #[test]
        fn tuples_and_prop_map(p in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(p < 20);
        }
    }
}
