//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the benchmarking surface its benches use: [`Criterion`],
//! [`BenchmarkGroup`] with throughput annotation, [`BenchmarkId`], the
//! [`criterion_group!`]/[`criterion_main!`] macros, and a [`Bencher`] with
//! `iter`.
//!
//! Measurement is deliberately simple: per benchmark it warms up, picks an
//! iteration count targeting ~25 ms per sample, takes `sample_size` samples
//! and reports the median with min/max spread (plus throughput when
//! annotated). No plotting, no statistics beyond that — stable enough to
//! compare orders of magnitude and contention effects, which is what the
//! workspace's benches assert in CHANGES.md.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    /// Measured per-iteration durations, one per sample.
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, storing per-iteration samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: find an iteration count giving ~25 ms
        // per sample (at least 1).
        let mut iters = 1u64;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed > Duration::from_millis(25) || iters >= 1 << 20 {
                break elapsed / iters.max(1) as u32;
            }
            iters *= 2;
        };
        let iters_per_sample = if per_iter > Duration::from_millis(25) {
            1
        } else {
            iters.max(1)
        };
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
        }
        self.samples.sort_unstable();
    }

    fn median(&self) -> Duration {
        if self.samples.is_empty() {
            Duration::ZERO
        } else {
            self.samples[self.samples.len() / 2]
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b));
        self
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b, input));
        self
    }

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return;
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        let median = bencher.median();
        let (lo, hi) = match (bencher.samples.first(), bencher.samples.last()) {
            (Some(&lo), Some(&hi)) => (lo, hi),
            _ => (Duration::ZERO, Duration::ZERO),
        };
        let mut line = format!(
            "{full:<52} time: [{} {} {}]",
            fmt_duration(lo),
            fmt_duration(median),
            fmt_duration(hi)
        );
        if let Some(tp) = self.throughput {
            let secs = median.as_secs_f64();
            if secs > 0.0 {
                match tp {
                    Throughput::Elements(n) => {
                        line.push_str(&format!("  thrpt: {:.0} elem/s", n as f64 / secs));
                    }
                    Throughput::Bytes(n) => {
                        line.push_str(&format!(
                            "  thrpt: {:.2} MiB/s",
                            n as f64 / secs / (1024.0 * 1024.0)
                        ));
                    }
                }
            }
        }
        println!("{line}");
    }

    /// Ends the group (cosmetic; prints a blank separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets the default sample count per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Applies a substring filter (from the command line).
    pub fn with_filter(mut self, filter: Option<String>) -> Self {
        self.filter = filter;
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, &mut f);
        self
    }

    fn matches(&self, full_id: &str) -> bool {
        self.filter
            .as_deref()
            .map(|f| full_id.contains(f))
            .unwrap_or(true)
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Parses the filter from bench argv (skipping cargo's flags).
pub fn filter_from_args() -> Option<String> {
    std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-') && a != "bench")
}

/// True when argv asks for a compile/list-only run (`--list` or
/// `cargo test --benches` probing).
pub fn list_only() -> bool {
    std::env::args().any(|a| a == "--list" || a == "--test")
}

/// Declares a benchmark group, in either criterion syntax.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            if $crate::list_only() {
                return;
            }
            let mut criterion: $crate::Criterion =
                $config.with_filter($crate::filter_from_args());
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        let mut group = c.benchmark_group("test/spin");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default().sample_size(3);
        spin(&mut c);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion::default().with_filter(Some("no-such-bench".into()));
        // Would take noticeable time if not filtered; completes instantly.
        let mut group = c.benchmark_group("g");
        group.bench_function("slow", |b| {
            b.iter(|| std::thread::sleep(std::time::Duration::from_millis(200)))
        });
        group.finish();
    }
}
