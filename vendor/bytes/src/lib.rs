//! Offline drop-in subset of the `bytes` crate: the [`Buf`]/[`BufMut`]
//! traits plus [`Bytes`]/[`BytesMut`] containers, covering exactly the
//! surface the tweetstore codec and segment layers use. The build
//! environment cannot reach crates.io, so the workspace vendors this
//! slice; it trades `bytes`' zero-copy `Arc` slicing tricks for plain
//! `Vec` storage, which the codec benches showed is irrelevant at
//! tweet-record sizes.

#![warn(missing_docs)]

use std::ops::{Bound, Deref, RangeBounds};

/// Read access to a contiguous-or-chunked byte cursor.
pub trait Buf {
    /// Bytes remaining between the cursor and the end.
    fn remaining(&self) -> usize;

    /// The current contiguous chunk at the cursor.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// True when any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte, advancing.
    fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "get_u8 on empty buffer");
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `i32`, advancing.
    fn get_i32_le(&mut self) -> i32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        i32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u32`, advancing.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`, advancing.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Copies `dst.len()` bytes into `dst`, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice out of bounds");
        let mut filled = 0;
        while filled < dst.len() {
            let chunk = self.chunk();
            let n = chunk.len().min(dst.len() - filled);
            dst[filled..filled + n].copy_from_slice(&chunk[..n]);
            filled += n;
            self.advance(n);
        }
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        *self = &self[cnt..];
    }
}

/// Write access to a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A growable byte buffer (plain `Vec` storage).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Drops all content, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut { data: src.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// An immutable byte buffer with an internal read cursor (so it can be
/// consumed through [`Buf`], like upstream `Bytes`).
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Bytes remaining to read.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when fully consumed (or empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A new `Bytes` over the given sub-range of the remaining bytes.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        Bytes {
            data: self.data[self.pos + start..self.pos + end].to_vec(),
            pos: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.pos += cnt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_i32_le(-5);
        buf.put_slice(b"abc");
        assert_eq!(buf.len(), 8);
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_i32_le(), -5);
        let mut rest = [0u8; 3];
        b.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"abc");
        assert!(b.is_empty());
    }

    #[test]
    fn slice_and_deref() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(b"hello world");
        let b = buf.freeze();
        assert_eq!(&b.slice(..5)[..], b"hello");
        assert_eq!(&b.slice(6..)[..], b"world");
        assert_eq!(b.len(), 11);
    }

    #[test]
    fn buf_for_slice_advances() {
        let mut s: &[u8] = &[1, 2, 3, 4, 5, 6, 7, 8];
        assert_eq!(s.get_u8(), 1);
        assert_eq!(s.get_u32_le(), u32::from_le_bytes([2, 3, 4, 5]));
        assert_eq!(s.remaining(), 3);
    }
}
