//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of `rand` it actually uses: the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`] with
//! `seed_from_u64`, and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream's ChaCha12, but the workspace only relies on
//! *determinism per seed* and on distributional quality, never on the exact
//! upstream byte stream (see DESIGN.md §4).

#![warn(missing_docs)]

/// The core source of randomness: a 64-bit output generator.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators. Only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be uniformly sampled from a range by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = (*self.start(), *self.end());
        assert!(low <= high, "gen_range called with empty range");
        T::sample_inclusive(rng, low, high)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128).wrapping_sub(low as i128) as u128;
                let v = sample_below_u128(rng, span);
                (low as i128).wrapping_add(v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128).wrapping_sub(low as i128) as u128 + 1;
                if span == 0 {
                    // Full 128-bit span cannot occur for <=64-bit types + 1
                    // except for the maximal u128 range, unreachable here.
                    unreachable!("inclusive range covers more than 2^127 values");
                }
                let v = sample_below_u128(rng, span);
                (low as i128).wrapping_add(v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform value in `[0, span)` by 128-bit widening multiply (Lemire).
fn sample_below_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // span always fits in 65 bits; one 64-bit draw widened is plenty for
    // the statistical use this workspace makes of it.
    let x = rng.next_u64() as u128;
    (x * span) >> 64
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let u = unit_f64(rng) as $t;
                low + (high - low) * u
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                // 2^-53 resolution makes the closed/open distinction moot.
                Self::sample_half_open(rng, low, high)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution subset).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, full width for integers, fair coin for bool).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from the given range (half-open or inclusive).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns true with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(0..3600u64);
            assert!(x < 3600);
            let y: i32 = rng.gen_range(1..=4);
            assert!((1..=4).contains(&y));
            let f: f64 = rng.gen_range(-0.01..0.01);
            assert!((-0.01..0.01).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn uniform_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0..10usize)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket {b}");
        }
    }

    #[test]
    fn negative_int_ranges_work() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1_000 {
            let x: i64 = rng.gen_range(-100..-50);
            assert!((-100..-50).contains(&x));
        }
    }
}
