//! Offline drop-in subset of `parking_lot`: non-poisoning [`Mutex`] and
//! [`RwLock`] built on `std::sync`. The build environment cannot reach
//! crates.io, and the workspace only needs the poison-free `lock()` API, so
//! this thin wrapper recovers from poisoned std locks instead of blocking
//! the registry fetch.

#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns a poison error: a
/// panic while holding the guard leaves the data accessible (callers own
/// their invariants, exactly parking_lot's contract).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with the same non-poisoning contract as [`Mutex`].
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
