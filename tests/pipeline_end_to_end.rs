//! End-to-end integration: generator → pipeline → statistics, with the
//! paper's published shapes as assertions.

use stir::core::{GroupTable, PipelineInput, ProfileRow, RefinementPipeline, TopKGroup, TweetRow};
use stir::geokr::Gazetteer;
use stir::twitter_sim::datasets::{Dataset, DatasetSpec};

fn run(n_users: usize, seed: u64) -> (stir::core::AnalysisResult, GroupTable) {
    let gazetteer = Gazetteer::load();
    let spec = DatasetSpec {
        n_users,
        ..DatasetSpec::korean_paper()
    };
    let dataset = Dataset::generate(spec, &gazetteer, seed);
    let pipeline = RefinementPipeline::with_defaults(&gazetteer);
    let result = pipeline.execute(
        dataset.users.iter().map(|u| ProfileRow {
            user: u.id.0,
            location_text: u.location_text.clone(),
        }),
        PipelineInput::rows(dataset.users.iter().flat_map(|u| {
            dataset
                .user_tweets(&gazetteer, u.id)
                .into_iter()
                .map(|t| TweetRow {
                    user: t.user.0,
                    tweet_id: t.id.0,
                    gps: t.gps,
                })
        })),
    );
    let table = GroupTable::compute(&result.users);
    (result, table)
}

#[test]
fn funnel_matches_paper_rates() {
    let (result, _) = run(8_000, 1);
    let f = &result.funnel;
    assert_eq!(f.users_collected, 8_000);
    // Paper: ≈ 58% of crawled users had well-defined profiles.
    let wd = f.well_defined_rate();
    assert!((0.48..0.68).contains(&wd), "well-defined rate {wd}");
    // Paper: only a few percent of tweets carry GPS.
    let gps = f.gps_rate();
    assert!((0.005..0.05).contains(&gps), "gps rate {gps}");
    // Paper: ≈ 2% of crawled users survive to the final cohort.
    let surv = f.survival_rate();
    assert!((0.01..0.06).contains(&surv), "survival {surv}");
    assert_eq!(f.users_final as usize, result.users.len());
}

#[test]
fn group_shares_match_paper_shapes() {
    let (_, table) = run(12_000, 2);
    assert!(
        table.total_users > 200,
        "cohort too small: {}",
        table.total_users
    );
    // Headline: Top-1 ∪ Top-2 is "nearly half" (> 40%).
    let t12 = table.top1_top2_pct();
    assert!((40.0..65.0).contains(&t12), "Top-1+Top-2 {t12}%");
    // None ≈ 30%.
    let none = table.row(TopKGroup::None).user_pct;
    assert!((22.0..38.0).contains(&none), "None {none}%");
    // Top-1 is the single largest group; middles are small.
    assert!(table.row(TopKGroup::Top1).user_pct > table.row(TopKGroup::Top2).user_pct);
    assert!(table.row(TopKGroup::Top3).user_pct < 15.0);
    // Percentages add up.
    let sum: f64 = table.rows.iter().map(|r| r.user_pct).sum();
    assert!((sum - 100.0).abs() < 1e-9);
}

#[test]
fn avg_locations_match_fig6_shapes() {
    let (_, table) = run(12_000, 3);
    let top1 = table.row(TopKGroup::Top1).avg_locations;
    let top6 = table.row(TopKGroup::Top6Plus).avg_locations;
    let none = table.row(TopKGroup::None).avg_locations;
    // Fig. 6: Top-1 ≈ 3–4 distinct districts; high-k groups see more.
    assert!((2.5..6.0).contains(&top1), "Top-1 avg {top1}");
    assert!(top6 > top1, "Top-6+ {top6} must exceed Top-1 {top1}");
    // None is the *narrow mobility* group: the lowest average.
    for g in [TopKGroup::Top1, TopKGroup::Top2, TopKGroup::Top6Plus] {
        assert!(
            none < table.row(g).avg_locations,
            "None {none} not below {} {}",
            g.label(),
            table.row(g).avg_locations
        );
    }
    // Overall average ≈ 4.
    assert!((3.0..5.5).contains(&table.overall_avg_locations));
}

#[test]
fn pipeline_is_deterministic() {
    let (a, ta) = run(3_000, 9);
    let (b, tb) = run(3_000, 9);
    assert_eq!(a.funnel, b.funnel);
    assert_eq!(ta, tb);
    for (x, y) in a.users.iter().zip(&b.users) {
        assert_eq!(x.user, y.user);
        assert_eq!(x.matched_rank, y.matched_rank);
        assert_eq!(x.entries, y.entries);
    }
}

#[test]
fn none_group_has_commuter_temporal_fingerprint() {
    use std::collections::HashMap;
    use stir::core::temporal::per_group_histograms;
    let gazetteer = Gazetteer::load();
    let spec = DatasetSpec {
        n_users: 10_000,
        ..DatasetSpec::korean_paper()
    };
    let dataset = Dataset::generate(spec, &gazetteer, 12);
    let pipeline = RefinementPipeline::with_defaults(&gazetteer);
    let result = pipeline.execute(
        dataset.users.iter().map(|u| ProfileRow {
            user: u.id.0,
            location_text: u.location_text.clone(),
        }),
        PipelineInput::rows(dataset.users.iter().flat_map(|u| {
            dataset
                .user_tweets(&gazetteer, u.id)
                .into_iter()
                .map(|t| TweetRow {
                    user: t.user.0,
                    tweet_id: t.id.0,
                    gps: t.gps,
                })
        })),
    );
    let groups: HashMap<u64, TopKGroup> =
        result.users.iter().map(|u| (u.user, u.group())).collect();
    let mut rows = Vec::new();
    for u in &dataset.users {
        if !groups.contains_key(&u.id.0) {
            continue;
        }
        for t in dataset.user_tweets(&gazetteer, u.id) {
            if t.gps.is_some() {
                rows.push((t.user.0, t.timestamp));
            }
        }
    }
    let hists = per_group_histograms(rows, &groups);
    let none_ci = hists[TopKGroup::None.index()].commute_index();
    let top1_ci = hists[TopKGroup::Top1.index()].commute_index();
    assert!(
        none_ci > top1_ci,
        "None commute index {none_ci:.3} must exceed Top-1 {top1_ci:.3}"
    );
}

#[test]
fn different_seeds_same_shapes() {
    // The calibration must be a property of the model, not one lucky seed.
    for seed in [100, 200] {
        let (_, table) = run(8_000, seed);
        let t12 = table.top1_top2_pct();
        let none = table.row(TopKGroup::None).user_pct;
        assert!(
            (35.0..68.0).contains(&t12),
            "seed {seed}: Top-1+Top-2 {t12}%"
        );
        assert!((18.0..42.0).contains(&none), "seed {seed}: None {none}%");
    }
}
