//! Property tests pinning the fused morsel engine to the staged reference
//! pipeline: for arbitrary corpora and arbitrary execution geometry
//! (threads × morsel size × partition count) the two paths must be
//! byte-identical — same funnel, same grouped users, same entries, same
//! matched ranks — including when tweets stream out of a WAL-recovered
//! store with a torn tail.

use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use stir::core::{AnalysisResult, PipelineBuilder, ProfileRow, TweetRow};
use stir::geokr::Gazetteer;
use stir::tweetstore::{StoreFormat, TweetRecord, TweetStore, Wal};

fn gaz() -> &'static Gazetteer {
    use std::sync::OnceLock;
    static GAZ: OnceLock<Gazetteer> = OnceLock::new();
    GAZ.get_or_init(Gazetteer::load)
}

/// Profile texts cycling through every classifier branch: kept districts,
/// vague, insufficient, in-coverage coordinates, foreign coordinates,
/// empty. Users with the same index share a text, exercising the select
/// memoization on the way.
const PROFILE_TEXTS: [&str; 6] = [
    "Seoul Yangcheon-gu",
    "Seoul Gangnam-gu",
    "my home",
    "Seoul",
    "37.517, 126.866",
    "",
];

/// Tweet GPS vocabulary: two resolvable Seoul districts, one
/// out-of-coverage fix (Tokyo), and a GPS-less row.
const POINTS: [Option<(f64, f64)>; 4] = [
    Some((37.517, 126.866)), // Yangcheon-gu
    Some((37.517, 127.047)), // Gangnam-gu
    Some((35.68, 139.69)),   // Tokyo — unresolvable
    None,
];

fn corpus(rows: &[(u64, usize)]) -> (Vec<ProfileRow>, Vec<TweetRow>) {
    let users: Vec<u64> = {
        let mut u: Vec<u64> = rows.iter().map(|&(u, _)| u).collect();
        u.sort_unstable();
        u.dedup();
        u
    };
    let profiles = users
        .iter()
        .map(|&u| ProfileRow {
            user: u,
            location_text: PROFILE_TEXTS[u as usize % PROFILE_TEXTS.len()].to_string(),
        })
        .collect();
    let tweets = rows
        .iter()
        .enumerate()
        .map(|(i, &(u, p))| match POINTS[p % POINTS.len()] {
            Some((lat, lon)) => TweetRow::tagged(u, i as u64, lat, lon),
            None => TweetRow::plain(u, i as u64),
        })
        .collect();
    (profiles, tweets)
}

fn assert_identical(a: &AnalysisResult, b: &AnalysisResult) -> Result<(), proptest::TestCaseError> {
    prop_assert_eq!(&a.funnel, &b.funnel);
    prop_assert_eq!(a.users.len(), b.users.len());
    for (x, y) in a.users.iter().zip(&b.users) {
        prop_assert_eq!(x.user, y.user);
        prop_assert_eq!(&x.state_profile, &y.state_profile);
        prop_assert_eq!(&x.county_profile, &y.county_profile);
        prop_assert_eq!(&x.entries, &y.entries);
        prop_assert_eq!(x.matched_rank, y.matched_rank);
    }
    prop_assert_eq!(&a.kept_profiles, &b.kept_profiles);
    Ok(())
}

const THREADS: [usize; 3] = [1, 2, 8];
const MORSELS: [usize; 3] = [1, 7, 4096];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn fused_equals_staged_on_arbitrary_corpora(
        rows in prop::collection::vec((0u64..10, 0usize..4), 1..250),
        threads_idx in 0usize..3,
        morsel_idx in 0usize..3,
        partitions in 1usize..9,
        exact in any::<bool>(),
    ) {
        let g = gaz();
        let (profiles, tweets) = corpus(&rows);
        let staged = PipelineBuilder::new(g).staged().threads(1).build().unwrap();
        let reference = staged.execute(profiles.clone(), tweets.clone());
        prop_assert!(reference.metrics.exec.is_none());
        // `exact` sweeps the adaptive scheduler on and off: byte-identity
        // must hold whether the engine obeys the configured geometry or
        // adapts it to the machine (possibly collapsing to serial-inline).
        let fused = PipelineBuilder::new(g)
            .threads(THREADS[threads_idx])
            .threads_exact(exact)
            .morsel_rows(MORSELS[morsel_idx])
            .partitions(partitions)
            .build()
            .unwrap();
        let got = fused.execute(profiles, tweets);
        assert_identical(&got, &reference)?;
        let exec = got.metrics.exec.as_ref().expect("fused fills exec");
        prop_assert_eq!(exec.rows_in, got.funnel.tweets_total);
        prop_assert_eq!(exec.kept_probes, got.funnel.tweets_with_gps);
        prop_assert_eq!(
            exec.partition_keys.iter().sum::<u64>(),
            got.funnel.strings_built
        );
    }

    #[test]
    fn fused_store_run_survives_wal_recovery_with_a_torn_tail(
        rows in prop::collection::vec((0u64..8, 0usize..4), 1..120),
        threads_idx in 0usize..3,
        morsel_idx in 0usize..3,
        exact in any::<bool>(),
        junk in prop::collection::vec(any::<u8>(), 1..40),
    ) {
        static CASE: AtomicU64 = AtomicU64::new(0);
        let g = gaz();
        let (profiles, tweets) = corpus(&rows);

        // Journal the corpus through the WAL, then simulate a crash
        // mid-append by tacking a torn frame onto the log.
        let path = std::env::temp_dir().join(format!(
            "stir-proptest-fused-{}-{}.log",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed),
        ));
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).expect("open wal");
        for t in &tweets {
            wal.append(&TweetRecord {
                id: t.tweet_id,
                user: t.user,
                timestamp: 1_300_000_000 + t.tweet_id,
                gps: t.gps,
                text: format!("tweet {}", t.tweet_id),
            }).expect("append");
        }
        wal.sync().expect("sync");
        drop(wal);
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .expect("reopen for torn tail");
            f.write_all(&junk).expect("write junk");
        }
        let (store, recovered) = Wal::recover(&path).expect("recover");
        let _ = std::fs::remove_file(&path);
        // Every synced frame survives; only the torn tail is dropped.
        prop_assert_eq!(recovered, tweets.len() as u64);

        // Fused from-store run ≡ staged row-fed run on the same corpus.
        let staged = PipelineBuilder::new(g).staged().threads(1).build().unwrap();
        let reference = staged.execute(profiles.clone(), tweets);
        let fused = PipelineBuilder::new(g)
            .threads(THREADS[threads_idx])
            .threads_exact(exact)
            .morsel_rows(MORSELS[morsel_idx])
            .build()
            .unwrap();
        let got = fused.execute(profiles, &store);
        assert_identical(&got, &reference)?;
        let scan = got.metrics.scan.as_ref().expect("store runs fill scan");
        prop_assert_eq!(scan.headers_decoded, recovered);
        prop_assert_eq!(scan.records_corrupt, 0);
    }

    #[test]
    fn fused_run_is_identical_across_store_formats(
        rows in prop::collection::vec((0u64..8, 0usize..4), 1..200),
        threads_idx in 0usize..3,
        morsel_idx in 0usize..3,
        exact in any::<bool>(),
    ) {
        let g = gaz();
        let (profiles, tweets) = corpus(&rows);
        let records: Vec<TweetRecord> = tweets
            .iter()
            .map(|t| TweetRecord {
                id: t.tweet_id,
                user: t.user,
                timestamp: 1_300_000_000 + t.tweet_id,
                gps: t.gps,
                text: format!("tweet {}", t.tweet_id),
            })
            .collect();

        // Same corpus in three storage layouts: all-row, all-columnar,
        // and a mid-stream format flip that leaves a mixed segment chain.
        // Small segments force several seals so the columnar path is hot.
        let mut v1 = TweetStore::with_segment_bytes_and_format(1024, StoreFormat::V1);
        let mut v2 = TweetStore::with_segment_bytes_and_format(1024, StoreFormat::V2);
        let mut mixed = TweetStore::with_segment_bytes_and_format(1024, StoreFormat::V1);
        for (i, r) in records.iter().enumerate() {
            v1.append(r);
            v2.append(r);
            if i == records.len() / 2 {
                mixed.set_format(StoreFormat::V2);
            }
            mixed.append(r);
        }

        let staged = PipelineBuilder::new(g).staged().threads(1).build().unwrap();
        let reference = staged.execute(profiles.clone(), tweets);
        let fused = PipelineBuilder::new(g)
            .threads(THREADS[threads_idx])
            .threads_exact(exact)
            .morsel_rows(MORSELS[morsel_idx])
            .build()
            .unwrap();
        for store in [&v1, &v2, &mixed] {
            let got = fused.execute(profiles.clone(), store);
            assert_identical(&got, &reference)?;
            let scan = got.metrics.scan.as_ref().expect("store runs fill scan");
            prop_assert_eq!(scan.headers_decoded, records.len() as u64);
            prop_assert_eq!(scan.records_corrupt, 0);
            // Any sealed columnar segment must have been served through
            // the direct column path, and the format census must agree
            // with the store's actual segment chain.
            let cols = store.segments().iter().filter(|s| s.is_columnar()).count() as u64;
            let rows_segs = store.segments().len() as u64 - cols;
            prop_assert_eq!(scan.segments_col, cols);
            prop_assert_eq!(scan.segments_row, rows_segs);
            if cols > 0 {
                prop_assert!(scan.col_bytes_read > 0);
            } else {
                prop_assert_eq!(scan.col_bytes_read, 0);
            }
        }
    }
}
