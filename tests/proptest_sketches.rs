//! Property tests pinning the sketch delta-merge query path to the scan
//! engines: for arbitrary corpora, arbitrary time windows (day-aligned
//! and straddling), every storage format (row, columnar, mixed) and both
//! store shapes (single, user-hash-sharded), answering from per-segment
//! group sketches plus a residual scan must be byte-identical to scanning
//! every record. A warm-started incremental session must agree with the
//! batch engines over the same store, and a tampered or truncated sketch
//! sidecar must never panic or change any answer — it only costs the
//! shortcut.

use std::sync::Arc;

use proptest::prelude::*;
use stir::core::{
    AnalysisResult, AnalysisSession, GazetteerSketcher, PipelineBuilder, ProfileRow, TimeWindow,
};
use stir::geokr::Gazetteer;
use stir::tweetstore::{GroupSketch, ShardedStore, StoreFormat, TweetRecord, TweetStore};

fn gaz() -> &'static Gazetteer {
    use std::sync::OnceLock;
    static GAZ: OnceLock<Gazetteer> = OnceLock::new();
    GAZ.get_or_init(Gazetteer::load)
}

const PROFILE_TEXTS: [&str; 6] = [
    "Seoul Yangcheon-gu",
    "Seoul Gangnam-gu",
    "my home",
    "Seoul",
    "37.517, 126.866",
    "",
];

/// Snaps a reverse-geocoder cell index to that cell's center coordinate.
/// The scan engines resolve GPS fixes through a 1/2000° cell cache while
/// the sketcher resolves exactly; at cell centers the two agree for any
/// point, so arbitrary coordinates stay fair game for the equivalence.
fn cell_center(k: i64) -> f64 {
    (k as f64 + 0.5) / 2000.0
}

/// GPS vocabulary: two Seoul districts, one out-of-coverage fix (Tokyo),
/// a GPS-less row, and two proptest-chosen Korea-area cells.
fn point(idx: usize, lat_k: i64, lon_k: i64) -> Option<(f64, f64)> {
    match idx % 6 {
        0 => Some((cell_center(75_034), cell_center(253_732))), // Yangcheon-gu
        1 => Some((cell_center(75_034), cell_center(254_094))), // Gangnam-gu
        2 => Some((35.68, 139.69)),                             // Tokyo — unresolvable
        3 => None,
        _ => Some((cell_center(lat_k), cell_center(lon_k))),
    }
}

type Row = (u64, usize, u64, u64);

/// `rows` is `(user, point_idx, day, second_of_day)` — tweets scattered
/// over users, locations, and days.
fn corpus(rows: &[Row], lat_k: i64, lon_k: i64) -> (Vec<ProfileRow>, Vec<TweetRecord>) {
    let users: Vec<u64> = {
        let mut u: Vec<u64> = rows.iter().map(|&(u, ..)| u).collect();
        u.sort_unstable();
        u.dedup();
        u
    };
    let profiles = users
        .iter()
        .map(|&u| ProfileRow {
            user: u,
            location_text: PROFILE_TEXTS[u as usize % PROFILE_TEXTS.len()].to_string(),
        })
        .collect();
    let records = rows
        .iter()
        .enumerate()
        .map(|(i, &(u, p, day, sec))| TweetRecord {
            id: i as u64,
            user: u,
            timestamp: day * 86_400 + sec,
            gps: point(p, lat_k, lon_k).map(|(lat, lon)| stir::geoindex::Point::new(lat, lon)),
            text: format!("tweet {i}"),
        })
        .collect();
    (profiles, records)
}

fn assert_identical(a: &AnalysisResult, b: &AnalysisResult) -> Result<(), proptest::TestCaseError> {
    prop_assert_eq!(&a.funnel, &b.funnel);
    prop_assert_eq!(&a.users, &b.users);
    prop_assert_eq!(&a.kept_profiles, &b.kept_profiles);
    Ok(())
}

/// A single store in the requested format (2 = mid-stream flip leaving a
/// mixed chain), sketcher installed before ingest, 1 KiB segments so
/// several seals happen.
fn build_store(records: &[TweetRecord], fmt_idx: usize) -> TweetStore {
    let first = match fmt_idx {
        0 => StoreFormat::V1,
        _ => StoreFormat::V2,
    };
    let mut store = TweetStore::with_segment_bytes_and_format(1024, first);
    store.set_sketcher(Arc::new(GazetteerSketcher::new()));
    for (i, r) in records.iter().enumerate() {
        if fmt_idx == 2 && i == records.len() / 2 {
            store.set_format(StoreFormat::V1);
        }
        store.append(r);
    }
    store
}

fn build_shards(records: &[TweetRecord], fmt_idx: usize, shards: usize) -> ShardedStore {
    let first = match fmt_idx {
        0 => StoreFormat::V1,
        _ => StoreFormat::V2,
    };
    let mut store = ShardedStore::with_segment_bytes_and_format(shards, 1024, first);
    store.set_sketcher(Arc::new(GazetteerSketcher::new()));
    for (i, r) in records.iter().enumerate() {
        if fmt_idx == 2 && i == records.len() / 2 {
            store.set_format(StoreFormat::V1);
        }
        store.append(r);
    }
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Sketch path ≡ scan path: full queries and windowed queries
    /// (aligned when `sec == 0`, straddling otherwise), across row /
    /// columnar / mixed segment chains and single / sharded stores.
    #[test]
    fn sketch_path_equals_scan_path(
        rows in prop::collection::vec((0u64..10, 0usize..6, 0u64..5, 0u64..86_400), 1..300),
        lat_k in 73_000i64..77_000,
        lon_k in 252_000i64..259_000,
        fmt_idx in 0usize..3,
        shards in 1usize..5,
        w_start in 0u64..6 * 86_400,
        w_len in 0u64..4 * 86_400,
        aligned in any::<bool>(),
    ) {
        let g = gaz();
        let (profiles, records) = corpus(&rows, lat_k, lon_k);
        let window = if aligned {
            TimeWindow {
                start: w_start / 86_400 * 86_400,
                end: (w_start + w_len) / 86_400 * 86_400,
            }
        } else {
            TimeWindow { start: w_start, end: w_start + w_len }
        };
        let scan = PipelineBuilder::new(g).build().unwrap();
        let sketched = PipelineBuilder::new(g).sketches(true).build().unwrap();
        if shards == 1 {
            let store = build_store(&records, fmt_idx);
            assert_identical(
                &sketched.execute(profiles.clone(), &store),
                &scan.execute(profiles.clone(), &store),
            )?;
            assert_identical(
                &sketched.execute_windowed(profiles.clone(), &store, window),
                &scan.execute_windowed(profiles, &store, window),
            )?;
        } else {
            let store = build_shards(&records, fmt_idx, shards);
            assert_identical(
                &sketched.execute(profiles.clone(), &store),
                &scan.execute(profiles.clone(), &store),
            )?;
            assert_identical(
                &sketched.execute_windowed_sharded(profiles.clone(), &store, window),
                &scan.execute_windowed_sharded(profiles, &store, window),
            )?;
        }
    }

    /// A warm-started session (sealed bulk merged from sketches, tail
    /// replayed record-wise) answers exactly like the batch pipeline and
    /// like a cold session fed every record in order.
    #[test]
    fn warm_session_equals_batch_with_sketches_on(
        rows in prop::collection::vec((0u64..8, 0usize..6, 0u64..4, 0u64..86_400), 1..250),
        lat_k in 73_000i64..77_000,
        lon_k in 252_000i64..259_000,
        sharded in any::<bool>(),
    ) {
        let g = gaz();
        let (profiles, records) = corpus(&rows, lat_k, lon_k);
        let batch = PipelineBuilder::new(g)
            .sketches(true)
            .build()
            .unwrap();
        let warm = if sharded {
            let store = build_shards(&records, 1, 4);
            let reference = batch.execute(profiles.clone(), &store);
            let session = AnalysisSession::from_shards(
                PipelineBuilder::new(g).sketches(true).build().unwrap(),
                profiles.clone(),
                &store,
            );
            assert_identical(&session.query().execute(), &reference)?;
            session
        } else {
            let store = build_store(&records, 1);
            let reference = batch.execute(profiles.clone(), &store);
            let session = AnalysisSession::from_store(
                PipelineBuilder::new(g).sketches(true).build().unwrap(),
                profiles.clone(),
                &store,
            );
            assert_identical(&session.query().execute(), &reference)?;
            session
        };
        // Windowed session queries read the warm-rebuilt day rings; a
        // cold session over the same records is the reference.
        let mut cold = AnalysisSession::new(
            PipelineBuilder::new(g).build().unwrap(),
            profiles,
        );
        for r in &records {
            cold.ingest(r.user, r.timestamp, r.gps);
        }
        prop_assert_eq!(warm.ingested(), cold.ingested());
        for days in [1u64, 2, 5] {
            assert_identical(
                &warm.query().window(days).execute(),
                &cold.query().window(days).execute(),
            )?;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `GroupSketch::decode` over arbitrary bytes: errors, never panics.
    #[test]
    fn sketch_decode_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..400),
    ) {
        let _ = GroupSketch::decode(&bytes);
    }

    /// A persisted store whose sketch sidecar is bit-flipped or truncated
    /// still loads, never panics, and answers every query identically —
    /// the damaged sidecar fails its checksum and the query falls back to
    /// the column scan (or rebuilds the sketch when a sketcher is
    /// installed).
    #[test]
    fn tampered_sketch_sidecar_falls_back_to_scan(
        rows in prop::collection::vec((0u64..6, 0usize..6, 0u64..3, 0u64..86_400), 150..300),
        lat_k in 73_000i64..77_000,
        lon_k in 252_000i64..259_000,
        damage_at in 0usize..1 << 20,
        flip in 1u8..=255,
        truncate in any::<bool>(),
    ) {
        use std::sync::atomic::{AtomicU64, Ordering};
        static CASE: AtomicU64 = AtomicU64::new(0);

        let g = gaz();
        let (profiles, records) = corpus(&rows, lat_k, lon_k);
        let store = build_store(&records, 1); // V2: sketches persist as sidecars
        let dir = std::env::temp_dir().join(format!(
            "stir-proptest-sketches-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        stir::tweetstore::persist::save(&store, &dir).unwrap();

        // Damage every persisted sidecar: the sketch region is whatever
        // follows the STIRSKT1 magic inside each segment file.
        let mut damaged = 0;
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().and_then(|e| e.to_str()) != Some("stir") {
                continue;
            }
            let bytes = std::fs::read(&path).unwrap();
            let Some(at) = bytes
                .windows(8)
                .position(|w| w == b"STIRSKT1")
            else {
                continue;
            };
            let mut bytes = bytes;
            let off = at + damage_at % (bytes.len() - at);
            if truncate {
                bytes.truncate(off);
            } else {
                bytes[off] ^= flip;
            }
            std::fs::write(&path, bytes).unwrap();
            damaged += 1;
        }
        prop_assert!(damaged > 0, "corpus too small to seal a sketched segment");

        let loaded = stir::tweetstore::persist::load(&dir).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        let scan = PipelineBuilder::new(g).build().unwrap();
        let sketched = PipelineBuilder::new(g).sketches(true).build().unwrap();
        let reference = scan.execute(profiles.clone(), &store);
        // No sketcher on the loaded store: damaged sidecars are dropped at
        // load, nothing can rebuild them, the query falls back to a scan.
        assert_identical(&sketched.execute(profiles.clone(), &loaded), &reference)?;
        // With a sketcher installed the dropped sidecars rebuild lazily
        // and the sketch path re-engages — same bytes either way.
        let mut rebuilt = loaded;
        rebuilt.set_sketcher(Arc::new(GazetteerSketcher::new()));
        assert_identical(&sketched.execute(profiles, &rebuilt), &reference)?;
    }
}
