//! Property tests pinning the incremental [`AnalysisSession`] to the
//! fused batch pipeline: after ingesting any prefix of a stream — in
//! arbitrary chunk sizes, across a snapshot/restore point, and across a
//! crash that tears the WAL mid-append — an unmodified session query must
//! be byte-identical to running the batch pipeline over that same prefix.

use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use stir::core::{
    AnalysisResult, AnalysisSession, DurableSession, PipelineBuilder, ProfileRow, TweetRow,
};
use stir::geokr::Gazetteer;
use stir::tweetstore::TweetRecord;

fn gaz() -> &'static Gazetteer {
    use std::sync::OnceLock;
    static GAZ: OnceLock<Gazetteer> = OnceLock::new();
    GAZ.get_or_init(Gazetteer::load)
}

/// Profile texts cycling through every classifier branch (see
/// `proptest_fused.rs`): kept districts, vague, insufficient, coordinates,
/// empty — so the session's kept-cohort probe is exercised on users the
/// batch select stage keeps *and* drops.
const PROFILE_TEXTS: [&str; 6] = [
    "Seoul Yangcheon-gu",
    "Seoul Gangnam-gu",
    "my home",
    "Seoul",
    "37.517, 126.866",
    "",
];

/// Tweet GPS vocabulary: two resolvable Seoul districts, one
/// out-of-coverage fix (Tokyo), and a GPS-less row.
const POINTS: [Option<(f64, f64)>; 4] = [
    Some((37.517, 126.866)), // Yangcheon-gu
    Some((37.517, 127.047)), // Gangnam-gu
    Some((35.68, 139.69)),   // Tokyo — unresolvable
    None,
];

/// Builds the corpus: profiles for every user seen, tweet rows in stream
/// order, and a timestamp per tweet spreading the stream over a few days
/// (the session buckets by day; the batch pipeline never sees time).
fn corpus(rows: &[(u64, usize, u64)]) -> (Vec<ProfileRow>, Vec<TweetRow>, Vec<u64>) {
    let users: Vec<u64> = {
        let mut u: Vec<u64> = rows.iter().map(|&(u, _, _)| u).collect();
        u.sort_unstable();
        u.dedup();
        u
    };
    let profiles = users
        .iter()
        .map(|&u| ProfileRow {
            user: u,
            location_text: PROFILE_TEXTS[u as usize % PROFILE_TEXTS.len()].to_string(),
        })
        .collect();
    let tweets = rows
        .iter()
        .enumerate()
        .map(|(i, &(u, p, _))| match POINTS[p % POINTS.len()] {
            Some((lat, lon)) => TweetRow::tagged(u, i as u64, lat, lon),
            None => TweetRow::plain(u, i as u64),
        })
        .collect();
    let timestamps = rows
        .iter()
        .enumerate()
        .map(|(i, &(_, _, day))| day * 86_400 + (i as u64 * 761) % 86_400)
        .collect();
    (profiles, tweets, timestamps)
}

/// The batch oracle over a tweet prefix.
fn batch(g: &'static Gazetteer, profiles: &[ProfileRow], tweets: &[TweetRow]) -> AnalysisResult {
    let pipe = PipelineBuilder::new(g).build().unwrap();
    pipe.execute(profiles.to_vec(), tweets.to_vec())
}

fn assert_identical(a: &AnalysisResult, b: &AnalysisResult) -> Result<(), proptest::TestCaseError> {
    prop_assert_eq!(&a.funnel, &b.funnel);
    prop_assert_eq!(&a.users, &b.users);
    prop_assert_eq!(&a.kept_profiles, &b.kept_profiles);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Chunked ingest: at every delivery boundary the live answer equals a
    /// batch run over exactly the tweets delivered so far.
    #[test]
    fn session_equals_batch_at_every_chunk_boundary(
        rows in prop::collection::vec((0u64..8, 0usize..4, 0u64..5), 1..100),
        chunk in 1usize..40,
    ) {
        let g = gaz();
        let (profiles, tweets, timestamps) = corpus(&rows);
        let pipe = PipelineBuilder::new(g).build().unwrap();
        let mut session = AnalysisSession::new(pipe, profiles.clone());
        let mut fed = 0usize;
        for batch_rows in tweets.chunks(chunk) {
            for t in batch_rows {
                session.ingest(t.user, timestamps[fed], t.gps);
                fed += 1;
            }
            assert_identical(
                &session.query().execute(),
                &batch(g, &profiles, &tweets[..fed]),
            )?;
        }
        prop_assert_eq!(session.ingested(), tweets.len() as u64);
    }

    /// Snapshot at an arbitrary point, restore into a fresh session, keep
    /// ingesting: the spliced run ends exactly where an uninterrupted one
    /// does.
    #[test]
    fn snapshot_restore_at_any_point_is_invisible(
        rows in prop::collection::vec((0u64..8, 0usize..4, 0u64..5), 1..100),
        cut_seed in 0usize..10_000,
    ) {
        let g = gaz();
        let (profiles, tweets, timestamps) = corpus(&rows);
        let cut = cut_seed % (tweets.len() + 1);
        let pipe = PipelineBuilder::new(g).build().unwrap();
        let mut session = AnalysisSession::new(pipe, profiles.clone());
        for (t, &ts) in tweets[..cut].iter().zip(&timestamps) {
            session.ingest(t.user, ts, t.gps);
        }
        let snap = session.snapshot();
        drop(session);

        let pipe = PipelineBuilder::new(g).build().unwrap();
        let mut restored = AnalysisSession::restore(pipe, &snap).expect("restore");
        prop_assert_eq!(restored.ingested(), cut as u64);
        for (t, &ts) in tweets[cut..].iter().zip(&timestamps[cut..]) {
            restored.ingest(t.user, ts, t.gps);
        }
        assert_identical(&restored.query().execute(), &batch(g, &profiles, &tweets))?;
    }

    /// Crash mid-WAL-append: ingest through the durable shell (with a
    /// checkpoint somewhere before the crash), tear bytes off the WAL
    /// tail, reopen, re-ingest everything the torn log lost — the final
    /// answer is byte-identical to a run that never crashed.
    #[test]
    fn torn_wal_recovery_then_reingest_equals_uninterrupted_run(
        rows in prop::collection::vec((0u64..8, 0usize..4, 0u64..5), 1..80),
        cut_seed in 0usize..10_000,
        ck_seed in 0usize..10_000,
        tear in 1u64..20,
    ) {
        static CASE: AtomicU64 = AtomicU64::new(0);
        let g = gaz();
        let (profiles, tweets, timestamps) = corpus(&rows);
        let dir = std::env::temp_dir().join(format!(
            "stir-proptest-session-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let wal_path = dir.join("session.wal");
        let snap_path = dir.join("session.snap");
        let rec = |i: usize| TweetRecord {
            id: i as u64,
            user: tweets[i].user,
            timestamp: timestamps[i],
            gps: tweets[i].gps,
            text: format!("tweet {i}"),
        };

        // First life: ingest a prefix, checkpointing partway through it.
        let cut = cut_seed % (tweets.len() + 1);
        let ck = ck_seed % (cut + 1);
        {
            let pipe = PipelineBuilder::new(g).build().unwrap();
            let mut svc = DurableSession::open(&wal_path, &snap_path, pipe, profiles.clone())
                .expect("open");
            for i in 0..ck {
                svc.ingest(&rec(i)).expect("append");
            }
            svc.checkpoint().expect("checkpoint");
            for i in ck..cut {
                svc.ingest(&rec(i)).expect("append");
            }
            svc.sync().expect("sync");
        }

        // The crash: the last WAL frame is torn mid-write.
        let len = std::fs::metadata(&wal_path).expect("wal exists").len();
        if len > tear {
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(&wal_path)
                .expect("reopen wal");
            f.set_len(len - tear).expect("tear tail");
        }

        // Second life: resume from checkpoint + recovered tail, then
        // re-ingest every record the torn log no longer covers.
        let pipe = PipelineBuilder::new(g).build().unwrap();
        let mut svc = DurableSession::open(&wal_path, &snap_path, pipe, profiles.clone())
            .expect("reopen");
        let resumed = svc.session().ingested();
        prop_assert!(resumed <= cut as u64, "recovered past what was written");
        for i in resumed as usize..tweets.len() {
            svc.ingest(&rec(i)).expect("re-append");
        }
        svc.sync().expect("sync");
        assert_identical(&svc.query().execute(), &batch(g, &profiles, &tweets))?;
        drop(svc);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
