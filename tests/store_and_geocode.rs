//! Integration: tweet store vs direct scans, and geocoder consistency
//! across the generate/analyse boundary.

use stir::geoindex::{BBox, Point};
use stir::geokr::yahoo::YahooPlaceFinder;
use stir::geokr::{Gazetteer, ReverseGeocoder};
use stir::tweetstore::{Query, TweetRecord, TweetStore};
use stir::twitter_sim::datasets::{Dataset, DatasetSpec};

fn store_of(dataset: &Dataset, gazetteer: &Gazetteer) -> TweetStore {
    let mut store = TweetStore::new();
    dataset.for_each_tweet(gazetteer, |t| {
        store.append(&TweetRecord {
            id: t.id.0,
            user: t.user.0,
            timestamp: t.timestamp,
            gps: t.gps,
            text: t.text.clone(),
        });
    });
    store
}

#[test]
fn indexed_queries_agree_with_scans() {
    let gazetteer = Gazetteer::load();
    let dataset = Dataset::generate(
        DatasetSpec {
            n_users: 800,
            ..DatasetSpec::korean_paper()
        },
        &gazetteer,
        31,
    );
    let store = store_of(&dataset, &gazetteer);
    assert_eq!(store.len() as u64, dataset.total_tweets());

    // User query == per-user generation.
    let user = dataset.users.iter().find(|u| u.gps_device).unwrap();
    let rows = Query::all().user(user.id.0).execute(&store);
    assert_eq!(rows.len(), user.tweet_budget as usize);

    // Seoul bbox query == scan filter.
    let seoul = BBox::new(37.42, 126.76, 37.70, 127.19);
    let via_index = Query::all().within(seoul).execute(&store);
    let via_scan = store
        .scan()
        .filter_map(|r| r.ok())
        .filter(|r| r.gps.is_some_and(|p| seoul.contains(p)))
        .count();
    assert_eq!(via_index.len(), via_scan);

    // Time range == scan filter.
    let rows = Query::all().between(86_400, 2 * 86_400).execute(&store);
    let scan = store
        .scan()
        .filter_map(|r| r.ok())
        .filter(|r| (86_400..2 * 86_400).contains(&r.timestamp))
        .count();
    assert_eq!(rows.len(), scan);
}

#[test]
fn gps_fixes_geocode_back_to_sampled_spots() {
    let gazetteer = Gazetteer::load();
    let dataset = Dataset::generate(
        DatasetSpec {
            n_users: 2_000,
            ..DatasetSpec::korean_paper()
        },
        &gazetteer,
        32,
    );
    let reverse = ReverseGeocoder::builder(&gazetteer).build_reverse();
    let mut total = 0u64;
    let mut in_spots = 0u64;
    for (u, truth) in dataset.users.iter().zip(&dataset.truth) {
        if !u.gps_device {
            continue;
        }
        let spot_ids: Vec<_> = truth.mobility.spots().iter().map(|s| s.0).collect();
        for t in dataset.user_tweets(&gazetteer, u.id) {
            let Some(p) = t.gps else { continue };
            total += 1;
            if let Some(d) = reverse.resolve(p) {
                if spot_ids.contains(&d) {
                    in_spots += 1;
                }
            }
        }
    }
    assert!(total > 500, "not enough GPS tweets: {total}");
    // With centroid-contracted sampling, ≥ 90% of fixes resolve back into
    // one of the user's mobility spots.
    assert!(
        in_spots * 10 >= total * 9,
        "only {in_spots}/{total} fixes resolved into the user's spots"
    );
}

#[test]
fn yahoo_xml_roundtrip_agrees_with_direct_geocoder() {
    let gazetteer = Gazetteer::load();
    let reverse = ReverseGeocoder::builder(&gazetteer).build_reverse();
    let api = YahooPlaceFinder::with_limits(&gazetteer, u64::MAX, 0);
    // A lattice of points over Korea, including off-coverage cells.
    let mut checked = 0;
    let mut lat = 33.0;
    while lat < 39.0 {
        let mut lon = 124.5;
        while lon < 131.5 {
            let p = Point::new(lat, lon);
            let direct = reverse.lookup(p).map(|r| (r.state, r.county));
            let via_xml = api.lookup(p).unwrap().map(|r| (r.state, r.county));
            assert_eq!(direct, via_xml, "disagreement at {p}");
            checked += 1;
            lon += 0.37;
        }
        lat += 0.41;
    }
    assert!(checked > 200);
}

#[test]
fn persistence_roundtrip_of_generated_corpus() {
    let gazetteer = Gazetteer::load();
    let dataset = Dataset::generate(
        DatasetSpec {
            n_users: 300,
            ..DatasetSpec::korean_paper()
        },
        &gazetteer,
        33,
    );
    let store = store_of(&dataset, &gazetteer);
    let dir = std::env::temp_dir().join(format!("stir-it-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    stir::tweetstore::persist::save(&store, &dir).unwrap();
    let loaded = stir::tweetstore::persist::load(&dir).unwrap();
    assert_eq!(loaded.len(), store.len());
    assert_eq!(loaded.stats().gps_records, store.stats().gps_records);
    let q = Query::all().gps(true);
    assert_eq!(q.execute(&loaded).len(), q.execute(&store).len());
    std::fs::remove_dir_all(&dir).unwrap();
}
