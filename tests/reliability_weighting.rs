//! Integration: the paper's future-work claim — reliability weights learned
//! from the Top-k analysis improve event-location estimation.

use stir::core::{
    PipelineInput, ProfileRow, RefinementPipeline, ReliabilityWeights, TopKGroup, TweetRow,
};
use stir::eventdet::weighted::RawReport;
use stir::eventdet::{LocationEstimator, MeanEstimator, ObservationBuilder, ParticleEstimator};
use stir::geoindex::Point;
use stir::geokr::Gazetteer;
use stir::twitter_sim::datasets::{Dataset, DatasetSpec};
use stir::twitter_sim::event::{inject, EventScenario};

fn analysed(n: usize, seed: u64) -> (Gazetteer, Dataset, stir::core::AnalysisResult) {
    let gazetteer = Gazetteer::load();
    let spec = DatasetSpec {
        n_users: n,
        ..DatasetSpec::korean_paper()
    };
    let dataset = Dataset::generate(spec, &gazetteer, seed);
    let result = RefinementPipeline::with_defaults(&gazetteer).execute(
        dataset.users.iter().map(|u| ProfileRow {
            user: u.id.0,
            location_text: u.location_text.clone(),
        }),
        PipelineInput::rows(dataset.users.iter().flat_map(|u| {
            dataset
                .user_tweets(&gazetteer, u.id)
                .into_iter()
                .map(|t| TweetRow {
                    user: t.user.0,
                    tweet_id: t.id.0,
                    gps: t.gps,
                })
        })),
    );
    (gazetteer, dataset, result)
}

#[test]
fn learned_weights_decrease_with_rank() {
    let (_, _, result) = analysed(15_000, 4);
    let w = ReliabilityWeights::from_cohort(&result.users, 0.02);
    // The core ordering the paper predicts: Top-1 profiles are the most
    // trustworthy, the None group's the least.
    assert!(w.weight(TopKGroup::Top1) > w.weight(TopKGroup::Top2));
    assert!(w.weight(TopKGroup::Top2) > w.weight(TopKGroup::None));
    assert!(
        w.weight(TopKGroup::Top1) > 0.4,
        "Top-1 weight {}",
        w.weight(TopKGroup::Top1)
    );
    assert!(w.weight(TopKGroup::None) <= 0.05);
}

#[test]
fn weighting_reduces_estimation_error_in_dense_region() {
    let (gazetteer, dataset, result) = analysed(8_000, 5);
    let epicenter = Point::new(37.50, 127.00); // Seoul
    let scenario = EventScenario::earthquake(epicenter, 20_000);

    let mut mean_unweighted = Vec::new();
    let mut mean_weighted = Vec::new();
    for trial in 0..5u64 {
        let reports = inject(&scenario, &dataset, &gazetteer, 1000 + trial);
        let raw: Vec<RawReport> = reports
            .iter()
            .map(|r| RawReport {
                user: r.tweet.user.0,
                timestamp: r.tweet.timestamp,
                gps: r.tweet.gps,
            })
            .collect();

        let weighted_builder = ObservationBuilder::from_analysis(&gazetteer, &result, 0.02);
        let mut uniform_builder = ObservationBuilder::from_analysis(&gazetteer, &result, 0.02)
            .with_weight_profile(ReliabilityWeights::uniform());
        uniform_builder.unknown_user_weight = 1.0;

        let est = MeanEstimator;
        let e_u = est
            .estimate(&uniform_builder.build(&raw))
            .map(|p| epicenter.haversine_km(p))
            .unwrap();
        let e_w = est
            .estimate(&weighted_builder.build(&raw))
            .map(|p| epicenter.haversine_km(p))
            .unwrap();
        mean_unweighted.push(e_u);
        mean_weighted.push(e_w);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (u, w) = (avg(&mean_unweighted), avg(&mean_weighted));
    assert!(
        w < u,
        "weighted mean error {w:.1} km should beat unweighted {u:.1} km"
    );
}

#[test]
fn particle_filter_benefits_too() {
    let (gazetteer, dataset, result) = analysed(8_000, 6);
    let epicenter = Point::new(37.50, 127.00);
    let scenario = EventScenario::earthquake(epicenter, 20_000);
    let reports = inject(&scenario, &dataset, &gazetteer, 77);
    let raw: Vec<RawReport> = reports
        .iter()
        .map(|r| RawReport {
            user: r.tweet.user.0,
            timestamp: r.tweet.timestamp,
            gps: r.tweet.gps,
        })
        .collect();

    let weighted_builder = ObservationBuilder::from_analysis(&gazetteer, &result, 0.02);
    let mut uniform_builder = ObservationBuilder::from_analysis(&gazetteer, &result, 0.02)
        .with_weight_profile(ReliabilityWeights::uniform());
    uniform_builder.unknown_user_weight = 1.0;

    let est = ParticleEstimator::default();
    let e_u = est
        .estimate(&uniform_builder.build(&raw))
        .map(|p| epicenter.haversine_km(p))
        .unwrap();
    let e_w = est
        .estimate(&weighted_builder.build(&raw))
        .map(|p| epicenter.haversine_km(p))
        .unwrap();
    // Allow slack: a single trial of a Monte Carlo method; the weighted run
    // must at least not be materially worse.
    assert!(
        e_w < e_u * 1.25,
        "weighted {e_w:.1} km vs unweighted {e_u:.1} km"
    );
}

#[test]
fn gps_observations_always_full_weight() {
    let (gazetteer, dataset, result) = analysed(5_000, 7);
    let builder = ObservationBuilder::from_analysis(&gazetteer, &result, 0.02);
    let scenario = EventScenario::earthquake(Point::new(37.50, 127.00), 0);
    let reports = inject(&scenario, &dataset, &gazetteer, 8);
    let raw: Vec<RawReport> = reports
        .iter()
        .map(|r| RawReport {
            user: r.tweet.user.0,
            timestamp: r.tweet.timestamp,
            gps: r.tweet.gps,
        })
        .collect();
    let gps_count = raw.iter().filter(|r| r.gps.is_some()).count();
    let obs = builder.build(&raw);
    assert_eq!(obs.iter().filter(|o| o.weight == 1.0).count(), gps_count);
    assert!(
        obs.len() > gps_count,
        "profile-derived observations must appear"
    );
}
