//! Integration: streaming collection, online burst detection and text
//! mentions against the simulator's ground truth.

use stir::eventdet::OnlineToretter;
use stir::geoindex::Point;
use stir::geokr::{Gazetteer, ReverseGeocoder};
use stir::textgeo::MentionExtractor;
use stir::twitter_sim::datasets::{Dataset, DatasetSpec};
use stir::twitter_sim::event::{inject, EventScenario};
use stir::twitter_sim::stream::{collect, StreamSpec};

fn fixtures(n: usize, seed: u64) -> (Gazetteer, Dataset) {
    let gazetteer = Gazetteer::load();
    let dataset = Dataset::generate(
        DatasetSpec {
            n_users: n,
            ..DatasetSpec::korean_paper()
        },
        &gazetteer,
        seed,
    );
    (gazetteer, dataset)
}

#[test]
fn online_detector_alerts_quickly_on_injected_event() {
    let (gazetteer, dataset) = fixtures(4_000, 21);
    let scenario = EventScenario::earthquake(Point::new(37.50, 127.00), 40_000);
    let reports = inject(&scenario, &dataset, &gazetteer, 3);
    assert!(reports.len() > 50, "too few reports: {}", reports.len());

    // Merge background + reports into one time-ordered stream.
    let mut stream: Vec<(u64, u64, String, Option<Point>)> = Vec::new();
    for u in dataset.users.iter().take(600) {
        for t in dataset.user_tweets(&gazetteer, u.id) {
            stream.push((t.user.0, t.timestamp, t.text, t.gps));
        }
    }
    for r in &reports {
        stream.push((
            r.tweet.user.0,
            r.tweet.timestamp,
            r.tweet.text.clone(),
            r.tweet.gps,
        ));
    }
    stream.sort_by_key(|s| s.1);

    let mut det = OnlineToretter::new("earthquake");
    let mut alert = None;
    for (user, ts, text, gps) in &stream {
        if let Some(a) = det.push(*user, *ts, text, *gps) {
            alert = Some(a);
            break;
        }
    }
    let alert = alert.expect("online alert must fire");
    // The alert arrives within the first few minutes of the event — the
    // latency property Toretter advertised.
    assert!(
        alert.triggered_at >= scenario.start && alert.triggered_at < scenario.start + 600,
        "alert at {} for event at {}",
        alert.triggered_at,
        scenario.start
    );
    assert!(!alert.reports.is_empty());
}

#[test]
fn no_alert_without_an_event() {
    let (gazetteer, dataset) = fixtures(1_500, 22);
    let mut stream: Vec<(u64, u64, String, Option<Point>)> = Vec::new();
    for u in dataset.users.iter().take(600) {
        for t in dataset.user_tweets(&gazetteer, u.id) {
            stream.push((t.user.0, t.timestamp, t.text, t.gps));
        }
    }
    stream.sort_by_key(|s| s.1);
    let mut det = OnlineToretter::new("earthquake");
    for (user, ts, text, gps) in &stream {
        assert!(
            det.push(*user, *ts, text, *gps).is_none(),
            "false alarm at t={ts}"
        );
    }
}

#[test]
fn event_report_mentions_resolve_to_true_district() {
    // Event-report text names the sensor's district (Fig. 4 behaviour);
    // the mention extractor must recover it for unambiguous names.
    let (gazetteer, dataset) = fixtures(3_000, 23);
    let scenario = EventScenario::earthquake(Point::new(37.50, 127.00), 0);
    let reports = inject(&scenario, &dataset, &gazetteer, 4);
    let extractor = MentionExtractor::new(&gazetteer);
    let mut with_mention = 0;
    let mut correct = 0;
    for r in &reports {
        let mentions = extractor.districts(&r.tweet.text);
        if let Some(&d) = mentions.first() {
            with_mention += 1;
            if d == r.true_district {
                correct += 1;
            }
        }
    }
    assert!(
        with_mention > 20,
        "too few mention-bearing reports: {with_mention}"
    );
    // Event reports always name the true district; ambiguity filtering may
    // skip some, but recovered ones must be right.
    assert_eq!(correct, with_mention);
}

#[test]
fn streamed_keyword_collection_matches_api_search() {
    let (gazetteer, dataset) = fixtures(400, 24);
    let streamed = collect(&dataset, &gazetteer, &StreamSpec::keyword("coffee"));
    let api = stir::twitter_sim::TwitterApi::with_limit(
        &dataset,
        &gazetteer,
        stir::twitter_sim::RateLimit {
            requests: 100_000,
            window_secs: 3600,
        },
    );
    let searched = api.search("coffee", 0, dataset.len()).unwrap();
    assert_eq!(streamed.tweets.len(), searched.len());
}

#[test]
fn gps_mentions_in_regular_tweets_match_gps_district_mostly() {
    let (gazetteer, dataset) = fixtures(3_000, 25);
    let extractor = MentionExtractor::new(&gazetteer);
    let reverse = ReverseGeocoder::builder(&gazetteer).build_reverse();
    let mut with_mention = 0u64;
    let mut hit = 0u64;
    for u in dataset.users.iter().filter(|u| u.gps_device) {
        for t in dataset.user_tweets(&gazetteer, u.id) {
            let Some(p) = t.gps else { continue };
            let Some(&mentioned) = extractor.districts(&t.text).first() else {
                continue;
            };
            let Some(actual) = reverse.resolve(p) else {
                continue;
            };
            with_mention += 1;
            if mentioned == actual {
                hit += 1;
            }
        }
    }
    assert!(with_mention > 100, "sample too small: {with_mention}");
    let precision = hit as f64 / with_mention as f64;
    // Ground truth plants ≈ 85% truthful mentions; border noise and
    // ambiguity filtering land the measurement in a wide band around it.
    assert!((0.65..0.95).contains(&precision), "precision {precision}");
}
