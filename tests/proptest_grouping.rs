//! Property tests on the grouping method and pipeline arithmetic —
//! cross-crate invariants on arbitrary inputs.

use proptest::prelude::*;
use stir::core::{
    group_cohort_with_block, group_user_keys_with, group_user_strings, group_user_strings_with,
    DistrictInterner, GroupTable, LocationKey, LocationString, OnlineGrouping, ProfileRow,
    RefinementPipeline, TieBreak, TopKGroup, TweetRow,
};
use stir::geoindex::Point;
use stir::geokr::Gazetteer;

const POLICIES: [TieBreak; 4] = [
    TieBreak::FirstSeen,
    TieBreak::Alphabetical,
    TieBreak::MatchedFirst,
    TieBreak::MatchedLast,
];

fn gaz() -> &'static Gazetteer {
    use std::sync::OnceLock;
    static GAZ: OnceLock<Gazetteer> = OnceLock::new();
    GAZ.get_or_init(Gazetteer::load)
}

/// A small closed vocabulary of (state, county) pairs, including the
/// profile location at index 0.
fn tweet_keys() -> Vec<(&'static str, &'static str)> {
    vec![
        ("Seoul", "Guro-gu"), // the profile location
        ("Seoul", "Mapo-gu"),
        ("Seoul", "Jung-gu"),
        ("Busan", "Jung-gu"), // same county name, different state
        ("Gyeonggi-do", "Bucheon-si"),
    ]
}

fn strings_from(indices: &[usize]) -> Vec<LocationString> {
    let keys = tweet_keys();
    indices
        .iter()
        .map(|&i| {
            let (s, c) = keys[i % keys.len()];
            LocationString {
                user: 1,
                state_profile: "Seoul".into(),
                county_profile: "Guro-gu".into(),
                state_tweet: s.into(),
                county_tweet: c.into(),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn grouping_conserves_counts_and_orders(indices in prop::collection::vec(0usize..5, 1..120)) {
        let strings = strings_from(&indices);
        let g = group_user_strings(&strings).unwrap();
        // Total tweets conserved.
        prop_assert_eq!(g.total_tweets(), strings.len() as u64);
        // Entries strictly ordered by count (desc) with stable ties.
        for w in g.entries.windows(2) {
            prop_assert!(w[0].count >= w[1].count);
        }
        // Distinct locations equals the number of distinct keys used.
        let mut used: Vec<usize> = indices.iter().map(|&i| i % 5).collect();
        used.sort_unstable();
        used.dedup();
        prop_assert_eq!(g.distinct_locations(), used.len());
        // Matched rank is consistent with the matched entry's position.
        match g.matched_rank {
            Some(r) => {
                prop_assert!(g.entries[r - 1].matched);
                prop_assert_eq!(g.entries.iter().filter(|e| e.matched).count(), 1);
                prop_assert!(indices.iter().any(|&i| i % 5 == 0));
            }
            None => {
                prop_assert!(g.entries.iter().all(|e| !e.matched));
                prop_assert!(indices.iter().all(|&i| i % 5 != 0));
            }
        }
        // Matched tweets equal the count of index-0 draws.
        let matched = indices.iter().filter(|&&i| i % 5 == 0).count() as u64;
        prop_assert_eq!(g.matched_tweets(), matched);
    }

    #[test]
    fn group_table_percentages_and_totals(indices in prop::collection::vec(0usize..5, 1..60), n_users in 1usize..12) {
        // Clone one user's strings across several synthetic users.
        let mut users = Vec::new();
        for u in 0..n_users {
            let mut strings = strings_from(&indices);
            for s in &mut strings {
                s.user = u as u64;
            }
            users.push(group_user_strings(&strings).unwrap());
        }
        let table = GroupTable::compute(&users);
        prop_assert_eq!(table.total_users, n_users as u64);
        prop_assert_eq!(table.total_tweets, (n_users * indices.len()) as u64);
        let pct_sum: f64 = table.rows.iter().map(|r| r.user_pct).sum();
        prop_assert!((pct_sum - 100.0).abs() < 1e-6);
        // Identical users all land in one group.
        let populated = table.rows.iter().filter(|r| r.users > 0).count();
        prop_assert_eq!(populated, 1);
    }

    #[test]
    fn tie_break_extremes_bound_the_rank(indices in prop::collection::vec(0usize..5, 1..100)) {
        let strings = strings_from(&indices);
        let ranks: Vec<Option<usize>> = [
            TieBreak::MatchedFirst,
            TieBreak::FirstSeen,
            TieBreak::Alphabetical,
            TieBreak::MatchedLast,
        ]
        .into_iter()
        .map(|tb| group_user_strings_with(&strings, tb).unwrap().matched_rank)
        .collect();
        // All policies agree on whether a match exists.
        prop_assert!(ranks.iter().all(|r| r.is_some()) || ranks.iter().all(|r| r.is_none()));
        if let (Some(best), Some(worst)) = (ranks[0], ranks[3]) {
            for r in &ranks {
                let r = r.unwrap();
                prop_assert!(best <= r && r <= worst, "rank {} outside [{}, {}]", r, best, worst);
            }
        }
        // Counts and totals are policy-invariant.
        let totals: Vec<u64> = [TieBreak::MatchedFirst, TieBreak::MatchedLast]
            .into_iter()
            .map(|tb| group_user_strings_with(&strings, tb).unwrap().total_tweets())
            .collect();
        prop_assert_eq!(totals[0], totals[1]);
    }

    #[test]
    fn online_grouping_equals_batch(indices in prop::collection::vec(0usize..5, 1..120)) {
        let strings = strings_from(&indices);
        // Intern once per district, push interned keys — the supported
        // (allocation-free) incremental path.
        let mut online = OnlineGrouping::new();
        let profile = online.intern_district("Seoul", "Guro-gu");
        for s in &strings {
            let tweet = online.intern_district(&s.state_tweet, &s.county_tweet);
            let key = online.key(s.user, profile, tweet);
            online.push_key(key);
        }
        let snapshot = online.snapshot();
        prop_assert_eq!(snapshot.len(), 1);
        let batch = group_user_strings(&strings).unwrap();
        prop_assert_eq!(&snapshot[0].matched_rank, &batch.matched_rank);
        prop_assert_eq!(&snapshot[0].entries, &batch.entries);
        prop_assert_eq!(online.group_of(1), Some(batch.group()));
    }

    #[test]
    fn interned_grouping_equals_string_grouping(
        pairs in prop::collection::vec((0u64..4, 0usize..8), 1..150),
        profile_idx in 0usize..8,
    ) {
        // Arbitrary users over an 8-district vocabulary (indices 5..8 wrap
        // onto 0..5 keys with a distinct state so same-name counties across
        // states are exercised); every user shares one profile district.
        let keys = tweet_keys();
        let district = |i: usize| -> (String, String) {
            let (s, c) = keys[i % keys.len()];
            if i >= keys.len() {
                (format!("Other-{}", s), c.to_string())
            } else {
                (s.to_string(), c.to_string())
            }
        };
        let (state_p, county_p) = district(profile_idx);
        let mut interner = DistrictInterner::new();
        for user in 0u64..4 {
            let strings: Vec<LocationString> = pairs
                .iter()
                .filter(|&&(u, _)| u == user)
                .map(|&(_, i)| {
                    let (state_t, county_t) = district(i);
                    LocationString {
                        user,
                        state_profile: state_p.clone(),
                        county_profile: county_p.clone(),
                        state_tweet: state_t,
                        county_tweet: county_t,
                    }
                })
                .collect();
            let packed: Vec<LocationKey> =
                strings.iter().map(|s| s.to_key(&mut interner)).collect();
            for tb in POLICIES {
                let via_strings = group_user_strings_with(&strings, tb);
                let via_keys = group_user_keys_with(&packed, tb, &interner);
                match (via_strings, via_keys) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        prop_assert_eq!(a.user, b.user, "{:?}", tb);
                        prop_assert_eq!(&a.state_profile, &b.state_profile, "{:?}", tb);
                        prop_assert_eq!(&a.county_profile, &b.county_profile, "{:?}", tb);
                        prop_assert_eq!(&a.entries, &b.entries, "{:?}", tb);
                        prop_assert_eq!(a.matched_rank, b.matched_rank, "{:?}", tb);
                    }
                    (a, b) => prop_assert!(false, "{:?}: {:?} vs {:?}", tb, a.is_some(), b.is_some()),
                }
            }
        }
    }

    #[test]
    fn parallel_grouping_equals_serial_at_any_geometry(
        sizes in prop::collection::vec(0usize..9, 1..40),
        threads in 1usize..9,
        block in 1usize..65,
        tb_idx in 0usize..4,
    ) {
        // A cohort with arbitrary per-user tweet counts (empty users are
        // dropped by both paths), grouped serially and through the block
        // scheduler at an arbitrary thread/block geometry.
        let keys = tweet_keys();
        let mut interner = DistrictInterner::new();
        let ids: Vec<_> = keys
            .iter()
            .map(|(s, c)| interner.intern(s, c))
            .collect();
        let cohort: Vec<(u64, Vec<LocationKey>)> = sizes
            .iter()
            .enumerate()
            .map(|(u, &n)| {
                let user = u as u64;
                let keys: Vec<LocationKey> = (0..n)
                    .map(|i| LocationKey {
                        user,
                        profile: ids[u % ids.len()],
                        tweet: ids[(u + 2 * i + 1) % ids.len()],
                    })
                    .collect();
                (user, keys)
            })
            .collect();
        let tb = POLICIES[tb_idx];
        let (serial, serial_blocks) = group_cohort_with_block(&cohort, &interner, tb, 1, cohort.len().max(1));
        let (parallel, blocks) = group_cohort_with_block(&cohort, &interner, tb, threads, block);
        prop_assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            prop_assert_eq!(a.user, b.user);
            prop_assert_eq!(&a.entries, &b.entries);
            prop_assert_eq!(a.matched_rank, b.matched_rank);
        }
        // The scheduler accounting is exact at any geometry.
        prop_assert_eq!(blocks.len(), threads);
        prop_assert_eq!(
            blocks.iter().sum::<u64>() as usize,
            cohort.len().div_ceil(block)
        );
        prop_assert_eq!(serial_blocks.iter().sum::<u64>(), 1);
    }

    #[test]
    fn pipeline_funnel_arithmetic(gps_flags in prop::collection::vec(any::<bool>(), 0..200)) {
        let g = gaz();
        let pipeline = RefinementPipeline::with_defaults(g);
        let profiles = vec![ProfileRow { user: 0, location_text: "Seoul Guro-gu".into() }];
        let guro = Point::new(37.495, 126.888);
        let tweets: Vec<TweetRow> = gps_flags
            .iter()
            .enumerate()
            .map(|(i, &has_gps)| TweetRow {
                user: 0,
                tweet_id: i as u64,
                gps: has_gps.then_some(guro),
            })
            .collect();
        let n_gps = gps_flags.iter().filter(|&&b| b).count() as u64;
        let result = pipeline.execute(profiles, tweets);
        prop_assert_eq!(result.funnel.tweets_total, gps_flags.len() as u64);
        prop_assert_eq!(result.funnel.tweets_with_gps, n_gps);
        prop_assert_eq!(result.funnel.strings_built, n_gps);
        prop_assert_eq!(result.funnel.users_final, u64::from(n_gps > 0));
        if n_gps > 0 {
            prop_assert_eq!(result.users[0].group(), TopKGroup::Top1);
        }
    }
}
